//! A minimal JSON document model: build, serialize, parse.
//!
//! The telemetry layer exports structured reports as JSON so that figure
//! binaries, integration tests and external tooling can consume them.
//! This workspace builds offline (no serde), so the document model is
//! hand-rolled: [`Json`] values serialize via `Display` and parse back
//! with [`Json::parse`] — enough for round-tripping telemetry reports.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as `f64`; integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are ordered (BTreeMap) so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts `key` into an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(m) => {
                m.insert(key.to_string(), value.into());
            }
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// Member lookup on objects; `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if losslessly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(v) => {
                f.write_str("[")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("]")
            }
            Json::Obj(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            loop {
                out.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(out));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut out = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                out.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(out));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always on a boundary).
                let len = match c {
                    0..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&b[*pos..*pos + len])
                    .map_err(|_| format!("bad UTF-8 at byte {pos}"))?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let j = Json::object()
            .with("name", "switch-3")
            .with("drops", 7u64)
            .with("lossless", true)
            .with("series", vec![1u64, 2, 3]);
        assert_eq!(j.get("name").and_then(Json::as_str), Some("switch-3"));
        assert_eq!(j.get("drops").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("series").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
    }

    #[test]
    fn roundtrip_through_text() {
        let j = Json::object()
            .with("esc", "a\"b\\c\nd")
            .with("neg", -2.5)
            .with("nested", Json::object().with("x", Json::Null))
            .with("arr", Json::Arr(vec![Json::Bool(false), Json::Num(1e9)]));
        let text = j.to_string();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, j);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let j = Json::parse(" { \"k\" : [ 1 , { \"µ\": \"\\u00b5\" } ] } ").unwrap();
        let arr = j.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("µ").unwrap().as_str(), Some("µ"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn big_integers_round_trip() {
        let j = Json::from(16u64 * 1024 * 1024 * 1024);
        let back = Json::parse(&j.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(16 * 1024 * 1024 * 1024));
    }
}
