//! Flight-recorder tracing: bounded binary event recording with
//! zero overhead when disabled, plus a Chrome `trace_event` exporter.
//!
//! # Design
//!
//! * A [`Tracer`] is a per-simulation handle: a [`TraceMask`] of enabled
//!   categories plus (when enabled) a shared bounded ring of fixed-size
//!   [`TraceRecord`]s — the **flight recorder**. The ring is allocated
//!   once at construction, so recording never allocates on the packet hot
//!   path; when full it overwrites the oldest record and counts the loss.
//! * Trace points go through [`trace_event!`], which compiles to a single
//!   mask test before evaluating any argument: with the mask empty (the
//!   default), tracing costs one predictable branch per trace point and
//!   nothing else.
//! * The clock is stamped once per dispatched event via [`Tracer::tick`]
//!   (the network model does this at the top of its `handle`), so
//!   components below the event loop — the MMU in particular — need no
//!   access to simulated time to emit records.
//! * [`capture`] runs a closure with an ambient trace session: every
//!   simulation built during the closure (on any thread — sweeps go
//!   through `exec::par_map`) records into its own ring, and the rings
//!   come back as [`TraceLog`]s sorted by [`TraceKey`] so the result is
//!   bit-identical at any worker count.
//! * [`chrome_trace`] converts logs to the Chrome `trace_event` JSON
//!   format (load in `chrome://tracing` or Perfetto): PFC pause→resume
//!   spans, flow lifetime spans with retransmission markers, occupancy
//!   counter tracks, and fault instants.
//! * A [`FlightGuard`] dumps the last records to stderr if its scope
//!   unwinds (panic, failed assertion, MMU audit violation), naming the
//!   label it was armed with.
//!
//! Configuration priority for a new simulation: an active [`capture`]
//! session wins, then the explicit [`TraceConfig`] the caller passed,
//! then the `DSH_TRACE_MASK` / `DSH_TRACE_CAP` environment variables.

use crate::json::Json;
use crate::time::Time;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Environment variable selecting trace categories when no explicit
/// configuration is given: a comma-separated list of category names
/// (`pfc,flow,mmu,fault`), `all`, or a numeric bit mask.
pub const MASK_ENV: &str = "DSH_TRACE_MASK";

/// Environment variable overriding the flight-recorder capacity
/// (records per simulation; default [`TraceConfig::DEFAULT_CAPACITY`]).
pub const CAP_ENV: &str = "DSH_TRACE_CAP";

/// Locks a mutex, ignoring poison: the flight recorder must stay usable
/// while a panic is unwinding — that is exactly when it gets dumped.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Categories and events
// ---------------------------------------------------------------------------

/// A bit mask of enabled trace categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TraceMask(u32);

impl TraceMask {
    /// Nothing enabled (the zero-overhead default).
    pub const NONE: TraceMask = TraceMask(0);
    /// Wire-level PFC pause/resume applied at ports.
    pub const PFC: TraceMask = TraceMask(1);
    /// Flow lifecycle: start, completion, failure, retransmissions.
    pub const FLOW: TraceMask = TraceMask(1 << 1);
    /// MMU decisions: pause/resume thresholds, headroom entry, occupancy
    /// samples, audit violations, deadlock onset.
    pub const MMU: TraceMask = TraceMask(1 << 2);
    /// Fault injection: link death/repair, frame corruption, drained
    /// frames.
    pub const FAULT: TraceMask = TraceMask(1 << 3);
    /// Hybrid fidelity: fluid-link escalation/de-escalation and fluid
    /// flow completions.
    pub const FLUID: TraceMask = TraceMask(1 << 4);
    /// Loss recovery: NACK emission, selective-repeat hole repairs, and
    /// RTO fires (the backoff window renders as a span in the Chrome
    /// export).
    pub const RECOVERY: TraceMask = TraceMask(1 << 5);
    /// Every category.
    pub const ALL: TraceMask = TraceMask((1 << 6) - 1);

    /// True when no category is enabled.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when any category of `other` is enabled here.
    #[inline]
    #[must_use]
    pub const fn intersects(self, other: TraceMask) -> bool {
        self.0 & other.0 != 0
    }

    /// The union of two masks.
    #[must_use]
    pub const fn union(self, other: TraceMask) -> TraceMask {
        TraceMask(self.0 | other.0)
    }

    /// The raw bits.
    #[must_use]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Parses a `DSH_TRACE_MASK`-style value: a comma-separated list of
    /// category names, `all`, or a plain number. Unknown names are
    /// ignored (so the variable can never break a run).
    #[must_use]
    pub fn parse(text: &str) -> TraceMask {
        let text = text.trim();
        if let Ok(bits) = text.parse::<u32>() {
            return TraceMask(bits & Self::ALL.0);
        }
        let mut mask = TraceMask::NONE;
        for name in text.split(',') {
            mask = mask.union(match name.trim().to_ascii_lowercase().as_str() {
                "pfc" => Self::PFC,
                "flow" => Self::FLOW,
                "mmu" => Self::MMU,
                "fault" => Self::FAULT,
                "fluid" => Self::FLUID,
                "recovery" => Self::RECOVERY,
                "all" => Self::ALL,
                _ => Self::NONE,
            });
        }
        mask
    }
}

/// What one trace record describes. Discriminants are stable: they are
/// the on-disk encoding (see [`TraceLog::encode`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceEvent {
    /// PFC PAUSE taking effect at an upstream port for one class
    /// (`class`); `payload` = pause quanta ticks unused, kept 0.
    PfcPause = 1,
    /// The matching class-scope RESUME.
    PfcResume = 2,
    /// DSH port-scope PAUSE taking effect at an upstream port.
    PfcPortPause = 3,
    /// The matching port-scope RESUME.
    PfcPortResume = 4,

    /// MMU decided to pause an ingress queue; `payload` = its shared
    /// occupancy in bytes.
    MmuQueuePause = 16,
    /// MMU resumed an ingress queue; `payload` = its shared occupancy.
    MmuQueueResume = 17,
    /// MMU paused a whole ingress port (DSH); `payload` = port occupancy.
    MmuPortPause = 18,
    /// MMU resumed a whole ingress port; `payload` = port occupancy.
    MmuPortResume = 19,
    /// MMU refused admission (lossy drop); `payload` = frame bytes.
    MmuDrop = 20,
    /// A frame was admitted into headroom (SIH static or DSH insurance);
    /// `payload` = the segment's occupancy after admission.
    HeadroomEnter = 21,
    /// Occupancy sample: shared-pool bytes of one switch.
    OccShared = 22,
    /// Occupancy sample: headroom + insurance bytes of one switch.
    OccHeadroom = 23,
    /// Occupancy sample: the Dynamic Threshold `T(t)` of one switch.
    OccThreshold = 24,
    /// An MMU audit invariant failed; `payload` = violation count.
    AuditFail = 25,
    /// The deadlock detector saw the first wedged port of the run.
    DeadlockOnset = 26,

    /// A flow started; `payload` = flow size in bytes.
    FlowStart = 32,
    /// A flow delivered every byte; `payload` = its FCT in picoseconds.
    FlowComplete = 33,
    /// A flow exhausted its retry budget; `payload` = bytes delivered.
    FlowFailed = 34,
    /// Go-back-N timeout retransmission; `payload` encodes the retry
    /// count and current RTO (see `dsh-transport`).
    Retransmit = 35,

    /// A link died; `node` = one endpoint, `payload` = the other.
    LinkDown = 48,
    /// A link recovered; `node` = one endpoint, `payload` = the other.
    LinkUp = 49,
    /// A data frame was corrupted in flight; `payload` = frame bytes.
    FrameCorrupt = 50,
    /// Frames drained by a dying link; `payload` = how many.
    LinkDrain = 51,

    /// A fluid link escalated to packet mode; `node`/`port` name the
    /// directed link's egress side, `payload` = the trigger reason code
    /// (see `dsh_net::fluid::EscalateReason`).
    FluidEscalate = 64,
    /// A packet link de-escalated back to fluid mode after its
    /// quiescence window.
    FluidDeescalate = 65,
    /// A flow was admitted to the fluid fast path; `payload` = its size.
    FluidFlowStart = 66,
    /// A fluid flow completed analytically; `payload` = its FCT in
    /// nanoseconds.
    FluidFlowComplete = 67,

    /// A receiver emitted a selective-repeat NACK; `payload` = the
    /// receiver's in-order mark (the cumulative-ACK byte the NACK
    /// carries).
    RecoveryNack = 80,
    /// A sender retransmitted one selective-repeat hole; `payload` =
    /// repaired bytes.
    RecoveryRepair = 81,
    /// A retransmission timeout fired (go-back-N rewind or
    /// selective-repeat re-arm); `payload` encodes the retry count and
    /// the backed-off RTO exactly like [`TraceEvent::Retransmit`].
    RecoveryRto = 82,
}

impl TraceEvent {
    /// The category this event belongs to.
    #[must_use]
    pub const fn mask(self) -> TraceMask {
        match self as u8 {
            64..=79 => TraceMask::FLUID,
            80..=95 => TraceMask::RECOVERY,
            1..=15 => TraceMask::PFC,
            16..=31 => TraceMask::MMU,
            32..=47 => TraceMask::FLOW,
            _ => TraceMask::FAULT,
        }
    }

    /// Stable lower-case name (used in dumps and the Chrome export).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            TraceEvent::PfcPause => "pfc_pause",
            TraceEvent::PfcResume => "pfc_resume",
            TraceEvent::PfcPortPause => "pfc_port_pause",
            TraceEvent::PfcPortResume => "pfc_port_resume",
            TraceEvent::MmuQueuePause => "mmu_queue_pause",
            TraceEvent::MmuQueueResume => "mmu_queue_resume",
            TraceEvent::MmuPortPause => "mmu_port_pause",
            TraceEvent::MmuPortResume => "mmu_port_resume",
            TraceEvent::MmuDrop => "mmu_drop",
            TraceEvent::HeadroomEnter => "headroom_enter",
            TraceEvent::OccShared => "occ_shared",
            TraceEvent::OccHeadroom => "occ_headroom",
            TraceEvent::OccThreshold => "occ_threshold",
            TraceEvent::AuditFail => "audit_fail",
            TraceEvent::DeadlockOnset => "deadlock_onset",
            TraceEvent::FlowStart => "flow_start",
            TraceEvent::FlowComplete => "flow_complete",
            TraceEvent::FlowFailed => "flow_failed",
            TraceEvent::Retransmit => "retransmit",
            TraceEvent::LinkDown => "link_down",
            TraceEvent::LinkUp => "link_up",
            TraceEvent::FrameCorrupt => "frame_corrupt",
            TraceEvent::LinkDrain => "link_drain",
            TraceEvent::FluidEscalate => "fluid_escalate",
            TraceEvent::FluidDeescalate => "fluid_deescalate",
            TraceEvent::FluidFlowStart => "fluid_flow_start",
            TraceEvent::FluidFlowComplete => "fluid_flow_complete",
            TraceEvent::RecoveryNack => "recovery_nack",
            TraceEvent::RecoveryRepair => "recovery_repair",
            TraceEvent::RecoveryRto => "recovery_rto",
        }
    }

    /// Decodes a stored discriminant.
    #[must_use]
    pub const fn from_u8(code: u8) -> Option<TraceEvent> {
        Some(match code {
            1 => TraceEvent::PfcPause,
            2 => TraceEvent::PfcResume,
            3 => TraceEvent::PfcPortPause,
            4 => TraceEvent::PfcPortResume,
            16 => TraceEvent::MmuQueuePause,
            17 => TraceEvent::MmuQueueResume,
            18 => TraceEvent::MmuPortPause,
            19 => TraceEvent::MmuPortResume,
            20 => TraceEvent::MmuDrop,
            21 => TraceEvent::HeadroomEnter,
            22 => TraceEvent::OccShared,
            23 => TraceEvent::OccHeadroom,
            24 => TraceEvent::OccThreshold,
            25 => TraceEvent::AuditFail,
            26 => TraceEvent::DeadlockOnset,
            32 => TraceEvent::FlowStart,
            33 => TraceEvent::FlowComplete,
            34 => TraceEvent::FlowFailed,
            35 => TraceEvent::Retransmit,
            48 => TraceEvent::LinkDown,
            49 => TraceEvent::LinkUp,
            50 => TraceEvent::FrameCorrupt,
            51 => TraceEvent::LinkDrain,
            64 => TraceEvent::FluidEscalate,
            65 => TraceEvent::FluidDeescalate,
            66 => TraceEvent::FluidFlowStart,
            67 => TraceEvent::FluidFlowComplete,
            80 => TraceEvent::RecoveryNack,
            81 => TraceEvent::RecoveryRepair,
            82 => TraceEvent::RecoveryRto,
            _ => return None,
        })
    }
}

// ---------------------------------------------------------------------------
// Records and the ring
// ---------------------------------------------------------------------------

/// One fixed-size flight-recorder record.
///
/// `at` is stamped by the tracer from its per-event clock (see
/// [`Tracer::tick`]); trace points fill only the fields that apply and
/// take the rest from [`TraceRecord::BLANK`] via struct-update syntax.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the record.
    pub at: Time,
    /// Event-specific payload word (bytes, peer node, encoded RTO, …).
    pub payload: u64,
    /// Switch or host the event happened at (`u32::MAX` = none).
    pub node: u32,
    /// Flow involved (`u32::MAX` = none).
    pub flow: u32,
    /// Port involved (`u16::MAX` = none).
    pub port: u16,
    /// Priority class / queue involved (`u8::MAX` = none).
    pub class: u8,
    /// The [`TraceEvent`] discriminant.
    pub event: u8,
}

/// The in-memory record must stay one cache-line-quarter: 32 bytes.
const _: () = assert!(std::mem::size_of::<TraceRecord>() == 32);

impl TraceRecord {
    /// The all-unset template trace points build on.
    pub const BLANK: TraceRecord = TraceRecord {
        at: Time::ZERO,
        payload: 0,
        node: u32::MAX,
        flow: u32::MAX,
        port: u16::MAX,
        class: u8::MAX,
        event: 0,
    };

    /// The decoded event, if the discriminant is known.
    #[must_use]
    pub fn kind(&self) -> Option<TraceEvent> {
        TraceEvent::from_u8(self.event)
    }

    /// Appends the 32-byte little-endian wire encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.at.as_ps().to_le_bytes());
        out.extend_from_slice(&self.payload.to_le_bytes());
        out.extend_from_slice(&self.node.to_le_bytes());
        out.extend_from_slice(&self.flow.to_le_bytes());
        out.extend_from_slice(&self.port.to_le_bytes());
        out.push(self.class);
        out.push(self.event);
        out.extend_from_slice(&[0u8; 4]); // reserved, keeps records 32 B
    }

    /// One human-readable dump line.
    fn render(&self) -> String {
        let name = self.kind().map_or("unknown", TraceEvent::name);
        let mut line = format!("{:>12} ns  {name:<16}", self.at.as_ns());
        if self.node != u32::MAX {
            line.push_str(&format!(" node={}", self.node));
        }
        if self.port != u16::MAX {
            line.push_str(&format!(" port={}", self.port));
        }
        if self.class != u8::MAX {
            line.push_str(&format!(" class={}", self.class));
        }
        if self.flow != u32::MAX {
            line.push_str(&format!(" flow={}", self.flow));
        }
        line.push_str(&format!(" payload={}", self.payload));
        line
    }
}

/// The bounded ring plus the per-simulation clock, behind one lock so a
/// record is stamped and stored atomically.
struct RingState {
    now: Time,
    buf: Vec<TraceRecord>,
    next: usize,
    cap: usize,
    dropped: u64,
}

impl RingState {
    fn new(cap: usize) -> RingState {
        // The whole recorder is allocated here, never on the record path.
        RingState { now: Time::ZERO, buf: Vec::with_capacity(cap), next: 0, cap, dropped: 0 }
    }

    fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.dropped += 1;
            self.buf[self.next] = rec;
        }
        self.next = (self.next + 1) % self.cap.max(1);
    }

    /// Records oldest-first.
    fn ordered(&self) -> Vec<TraceRecord> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// Static configuration for a simulation's tracer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Enabled categories ([`TraceMask::NONE`] = tracing off).
    pub mask: TraceMask,
    /// Flight-recorder capacity in records.
    pub capacity: usize,
}

impl TraceConfig {
    /// Default ring capacity: 64 Ki records = 2 MiB per simulation.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Tracing disabled.
    #[must_use]
    pub const fn off() -> TraceConfig {
        TraceConfig { mask: TraceMask::NONE, capacity: Self::DEFAULT_CAPACITY }
    }

    /// Every category, default capacity.
    #[must_use]
    pub const fn all() -> TraceConfig {
        TraceConfig { mask: TraceMask::ALL, capacity: Self::DEFAULT_CAPACITY }
    }

    /// The environment-variable configuration (`DSH_TRACE_MASK`,
    /// `DSH_TRACE_CAP`), read once per process.
    #[must_use]
    pub fn from_env() -> TraceConfig {
        static ENV: OnceLock<TraceConfig> = OnceLock::new();
        *ENV.get_or_init(|| {
            let mask = std::env::var(MASK_ENV).map_or(TraceMask::NONE, |v| TraceMask::parse(&v));
            let capacity = std::env::var(CAP_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&c| c > 0)
                .unwrap_or(Self::DEFAULT_CAPACITY);
            TraceConfig { mask, capacity }
        })
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// Sort key identifying one simulation's log within a [`capture`]
/// session, so multi-threaded sweeps export in a deterministic order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct TraceKey {
    /// The simulation's seed (unique per sweep point by construction).
    pub seed: u64,
    /// Disambiguates simulations sharing a seed (e.g. scheme index).
    pub tag: u32,
}

/// A per-simulation tracing handle: a category mask and, when any
/// category is enabled, a shared flight-recorder ring.
///
/// Cloning shares the ring — the network model and every MMU of a
/// simulation hold clones of one tracer. With the mask empty there is no
/// ring at all and every trace point reduces to one branch.
#[derive(Clone, Default)]
pub struct Tracer {
    mask: TraceMask,
    shared: Option<Arc<Mutex<RingState>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("mask", &self.mask)
            .field("enabled", &self.shared.is_some())
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer (mask empty, no ring).
    #[must_use]
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A recording tracer with its own ring of `capacity` records.
    /// An empty `mask` yields the disabled tracer.
    #[must_use]
    pub fn new(mask: TraceMask, capacity: usize) -> Tracer {
        if mask.is_empty() {
            return Tracer::disabled();
        }
        Tracer { mask, shared: Some(Arc::new(Mutex::new(RingState::new(capacity)))) }
    }

    /// Resolves the tracer for a new simulation: an active [`capture`]
    /// session wins (and collects this tracer's ring), then `cfg`, then
    /// the process environment.
    #[must_use]
    pub fn for_simulation(cfg: &TraceConfig, key: TraceKey) -> Tracer {
        if let Some(tracer) = Session::register(key) {
            return tracer;
        }
        let cfg = if cfg.mask.is_empty() { TraceConfig::from_env() } else { *cfg };
        Tracer::new(cfg.mask, cfg.capacity)
    }

    /// True when no category is enabled.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.mask.is_empty()
    }

    /// The enabled categories.
    #[must_use]
    pub fn mask(&self) -> TraceMask {
        self.mask
    }

    /// Whether records in `cat` should be produced. This is the one test
    /// on the hot path; keep call sites behind it.
    #[inline]
    #[must_use]
    pub fn wants(&self, cat: TraceMask) -> bool {
        self.mask.intersects(cat)
    }

    /// Advances the record clock to `now`. Called once per dispatched
    /// event by the model; no-op (one branch) when tracing is off.
    #[inline]
    pub fn tick(&self, now: Time) {
        if let Some(shared) = &self.shared {
            lock(shared).now = now;
        }
    }

    /// Stores one record, stamping it with the current clock. Call sites
    /// must be guarded by [`Tracer::wants`] (the [`trace_event!`] macro
    /// does this).
    pub fn push(&self, mut rec: TraceRecord) {
        if let Some(shared) = &self.shared {
            let mut state = lock(shared);
            rec.at = state.now;
            state.push(rec);
        }
    }

    /// Snapshots the recorder into a [`TraceLog`] (empty when disabled).
    #[must_use]
    pub fn log(&self, key: TraceKey) -> TraceLog {
        match &self.shared {
            Some(shared) => {
                let state = lock(shared);
                TraceLog { key, records: state.ordered(), dropped: state.dropped }
            }
            None => TraceLog { key, records: Vec::new(), dropped: 0 },
        }
    }

    /// Dumps the last `last` records to stderr under `label` — the
    /// flight-recorder crash dump. No-op when disabled.
    pub fn dump(&self, label: &str, last: usize) {
        let Some(shared) = &self.shared else { return };
        let (records, dropped) = {
            let state = lock(shared);
            (state.ordered(), state.dropped)
        };
        let skip = records.len().saturating_sub(last);
        let mut out = format!(
            "=== flight recorder: {label} ===\n\
             last {} of {} recorded ({dropped} older records overwritten)\n",
            records.len() - skip,
            records.len(),
        );
        for rec in &records[skip..] {
            out.push_str(&rec.render());
            out.push('\n');
        }
        out.push_str("=== end of flight recorder ===");
        eprintln!("{out}");
    }
}

/// Dumps the flight recorder if its scope unwinds.
///
/// Arm one around a fragile region (an experiment run, an audit); if a
/// panic crosses it, the last records are printed with the guard's label
/// so the failure names what the simulator was doing.
#[derive(Debug)]
pub struct FlightGuard {
    tracer: Tracer,
    label: String,
    last: usize,
}

impl FlightGuard {
    /// How many trailing records a dump shows by default.
    pub const DEFAULT_LAST: usize = 64;

    /// Arms a guard over `tracer` (no-op when the tracer is disabled).
    #[must_use]
    pub fn arm(tracer: &Tracer, label: impl Into<String>) -> FlightGuard {
        FlightGuard { tracer: tracer.clone(), label: label.into(), last: Self::DEFAULT_LAST }
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.tracer.dump(&self.label, self.last);
        }
    }
}

/// Emits one trace record through `$tracer` if the event's category is
/// enabled. Arguments are **not evaluated** when the category is masked
/// off; unset fields come from [`TraceRecord::BLANK`].
///
/// ```
/// use dsh_simcore::trace::{TraceEvent, TraceMask, Tracer};
/// use dsh_simcore::trace_event;
///
/// let tracer = Tracer::new(TraceMask::FLOW, 128);
/// trace_event!(tracer, TraceEvent::FlowStart, { flow: 7, payload: 1_000_000 });
/// assert_eq!(tracer.log(Default::default()).records.len(), 1);
/// ```
#[macro_export]
macro_rules! trace_event {
    ($tracer:expr, $event:expr, { $($field:ident : $value:expr),* $(,)? }) => {
        if $tracer.wants($event.mask()) {
            $tracer.push($crate::trace::TraceRecord {
                event: $event as u8,
                $($field: $value,)*
                ..$crate::trace::TraceRecord::BLANK
            });
        }
    };
}

// ---------------------------------------------------------------------------
// Capture sessions
// ---------------------------------------------------------------------------

struct Session {
    mask: TraceMask,
    capacity: usize,
    entries: Vec<(TraceKey, Tracer)>,
}

static SESSION: Mutex<Option<Session>> = Mutex::new(None);
static CAPTURE_GATE: Mutex<()> = Mutex::new(());

impl Session {
    /// Called from [`Tracer::for_simulation`]: joins the active session
    /// (from any thread) if there is one.
    fn register(key: TraceKey) -> Option<Tracer> {
        let mut slot = lock(&SESSION);
        let session = slot.as_mut()?;
        let tracer = Tracer::new(session.mask, session.capacity);
        session.entries.push((key, tracer.clone()));
        Some(tracer)
    }
}

/// Clears the session even if the captured closure panics.
struct SessionClear;
impl Drop for SessionClear {
    fn drop(&mut self) {
        *lock(&SESSION) = None;
    }
}

/// Runs `f` with an ambient trace session: every simulation constructed
/// while it runs — including inside `exec::par_map` workers — records
/// `mask` events into its own ring of `capacity` records. Returns `f`'s
/// result and one [`TraceLog`] per simulation, sorted by [`TraceKey`]
/// (ties keep registration order), so the logs are byte-identical at any
/// executor width as long as keys are unique.
///
/// Sessions are process-global and serialized: concurrent captures queue
/// up behind each other. Simulations built by *unrelated* threads during
/// a capture join it — keep captures scoped to code you control.
pub fn capture<R>(mask: TraceMask, capacity: usize, f: impl FnOnce() -> R) -> (R, Vec<TraceLog>) {
    let _gate = lock(&CAPTURE_GATE);
    *lock(&SESSION) = Some(Session { mask, capacity, entries: Vec::new() });
    let clear = SessionClear;
    let result = f();
    let session = lock(&SESSION).take().expect("capture session vanished mid-run");
    drop(clear);
    let mut entries: Vec<(usize, TraceKey, Tracer)> = session
        .entries
        .into_iter()
        .enumerate()
        .map(|(serial, (key, tracer))| (serial, key, tracer))
        .collect();
    entries.sort_by_key(|&(serial, key, _)| (key, serial));
    let logs = entries.into_iter().map(|(_, key, tracer)| tracer.log(key)).collect();
    (result, logs)
}

// ---------------------------------------------------------------------------
// Logs: binary encoding, rendering, Chrome export
// ---------------------------------------------------------------------------

/// The snapshot of one simulation's flight recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceLog {
    /// The simulation's sort key within its capture session.
    pub key: TraceKey,
    /// Records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records overwritten because the ring was full.
    pub dropped: u64,
}

impl TraceLog {
    /// The binary dump: a 32-byte header (`DSHT`, version, key, counts)
    /// followed by the 32-byte little-endian records.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 32 * self.records.len());
        out.extend_from_slice(b"DSHT");
        out.extend_from_slice(&1u32.to_le_bytes()); // format version
        out.extend_from_slice(&self.key.seed.to_le_bytes());
        out.extend_from_slice(&self.key.tag.to_le_bytes());
        out.extend_from_slice(&u32::try_from(self.records.len()).unwrap_or(u32::MAX).to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        for rec in &self.records {
            rec.encode_into(&mut out);
        }
        out
    }

    /// Human-readable rendering, one line per record.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str(&rec.render());
            out.push('\n');
        }
        out
    }
}

/// Open B-span bookkeeping for the Chrome export.
fn span_begin(open: &mut std::collections::BTreeMap<(u64, u64), u64>, pid: u64, tid: u64) {
    *open.entry((pid, tid)).or_insert(0) += 1;
}

fn span_end(open: &mut std::collections::BTreeMap<(u64, u64), u64>, pid: u64, tid: u64) -> bool {
    match open.get_mut(&(pid, tid)) {
        Some(n) if *n > 0 => {
            *n -= 1;
            true
        }
        _ => false,
    }
}

/// Converts captured logs into a Chrome `trace_event` JSON document
/// (load the file in `chrome://tracing` or <https://ui.perfetto.dev>).
///
/// Tracks:
/// * **pid 1 "PFC wire"** — pause→resume spans per `(node, port, class)`;
/// * **pid 2 "MMU"** — pause decisions as spans, headroom entries,
///   drops, audit failures and deadlock onset as instants;
/// * **pid 3 "flows"** — one lifetime span per flow with retransmission
///   markers;
/// * **pid 4 "occupancy"** — shared / headroom / threshold counters per
///   switch;
/// * **pid 5 "faults"** — link death/repair and corruption instants.
///
/// `provenance` is embedded under `otherData.provenance`; pass a fixed
/// value when byte-stable output matters across runs.
#[must_use]
pub fn chrome_trace(logs: &[TraceLog], provenance: Json) -> Json {
    use std::collections::BTreeMap;

    let mut events: Vec<Json> = Vec::new();
    let mut open: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut names: BTreeMap<(u64, u64), String> = BTreeMap::new();
    let mut end_ts = 0.0f64;
    let mut dropped_total = 0u64;
    let mut any_fluid = false;
    let mut any_recovery = false;

    let ev = |name: &str, ph: &str, ts: f64, pid: u64, tid: u64| {
        Json::object()
            .with("name", name)
            .with("ph", ph)
            .with("ts", ts)
            .with("pid", pid)
            .with("tid", tid)
    };

    for log in logs {
        dropped_total += log.dropped;
        for rec in &log.records {
            let Some(kind) = rec.kind() else { continue };
            let ts = rec.at.as_ps() as f64 / 1e6; // ps → µs
            end_ts = end_ts.max(ts);
            let node = u64::from(rec.node);
            let port = u64::from(rec.port);
            let class = u64::from(rec.class);
            match kind {
                TraceEvent::PfcPause | TraceEvent::PfcPortPause => {
                    let tid = (node << 16) | (port << 4) | class.min(15);
                    let label = if kind == TraceEvent::PfcPause {
                        format!("n{node} p{port} c{class} pause", node = rec.node)
                    } else {
                        format!("n{node} p{port} port-pause")
                    };
                    names.entry((1, tid)).or_insert_with(|| label.clone());
                    span_begin(&mut open, 1, tid);
                    events.push(ev(&label, "B", ts, 1, tid));
                }
                TraceEvent::PfcResume | TraceEvent::PfcPortResume => {
                    let tid = (node << 16) | (port << 4) | class.min(15);
                    if span_end(&mut open, 1, tid) {
                        events.push(ev("", "E", ts, 1, tid));
                    }
                }
                TraceEvent::MmuQueuePause | TraceEvent::MmuPortPause => {
                    let tid = (node << 16) | (port << 4) | class.min(15);
                    let label = if kind == TraceEvent::MmuQueuePause {
                        format!("mmu n{node} p{port} q{class} qoff")
                    } else {
                        format!("mmu n{node} p{port} poff")
                    };
                    names.entry((2, tid)).or_insert_with(|| label.clone());
                    span_begin(&mut open, 2, tid);
                    events.push(
                        ev(&label, "B", ts, 2, tid)
                            .with("args", Json::object().with("occupancy_bytes", rec.payload)),
                    );
                }
                TraceEvent::MmuQueueResume | TraceEvent::MmuPortResume => {
                    let tid = (node << 16) | (port << 4) | class.min(15);
                    if span_end(&mut open, 2, tid) {
                        events.push(ev("", "E", ts, 2, tid));
                    }
                }
                TraceEvent::MmuDrop | TraceEvent::HeadroomEnter => {
                    let tid = (node << 16) | (port << 4) | class.min(15);
                    events.push(
                        ev(kind.name(), "i", ts, 2, tid)
                            .with("s", "t")
                            .with("args", Json::object().with("bytes", rec.payload)),
                    );
                }
                TraceEvent::AuditFail | TraceEvent::DeadlockOnset => {
                    events.push(
                        ev(kind.name(), "i", ts, 2, node << 16)
                            .with("s", "p")
                            .with("args", Json::object().with("node", node)),
                    );
                }
                TraceEvent::FlowStart => {
                    let tid = u64::from(rec.flow);
                    let label = format!("flow {}", rec.flow);
                    names.entry((3, tid)).or_insert_with(|| label.clone());
                    span_begin(&mut open, 3, tid);
                    events.push(
                        ev(&label, "B", ts, 3, tid)
                            .with("args", Json::object().with("size_bytes", rec.payload)),
                    );
                }
                TraceEvent::FlowComplete | TraceEvent::FlowFailed => {
                    let tid = u64::from(rec.flow);
                    if span_end(&mut open, 3, tid) {
                        events.push(
                            ev("", "E", ts, 3, tid)
                                .with("args", Json::object().with("outcome", kind.name())),
                        );
                    }
                }
                TraceEvent::Retransmit => {
                    let tid = u64::from(rec.flow);
                    events.push(
                        ev("retransmit", "i", ts, 3, tid).with("s", "t").with(
                            "args",
                            Json::object()
                                .with("retries", rec.payload >> 48)
                                .with("rto_ns", rec.payload & ((1 << 48) - 1)),
                        ),
                    );
                }
                TraceEvent::OccShared | TraceEvent::OccHeadroom | TraceEvent::OccThreshold => {
                    let series = match kind {
                        TraceEvent::OccShared => "shared",
                        TraceEvent::OccHeadroom => "headroom",
                        _ => "threshold",
                    };
                    events.push(
                        ev(&format!("sw{node} {series}"), "C", ts, 4, node)
                            .with("args", Json::object().with("bytes", rec.payload)),
                    );
                }
                TraceEvent::LinkDown
                | TraceEvent::LinkUp
                | TraceEvent::FrameCorrupt
                | TraceEvent::LinkDrain => {
                    events.push(ev(kind.name(), "i", ts, 5, node).with("s", "p").with(
                        "args",
                        Json::object().with("node", node).with("payload", rec.payload),
                    ));
                }
                TraceEvent::FluidEscalate
                | TraceEvent::FluidDeescalate
                | TraceEvent::FluidFlowStart
                | TraceEvent::FluidFlowComplete => {
                    any_fluid = true;
                    events.push(
                        ev(kind.name(), "i", ts, 6, node).with("s", "t").with(
                            "args",
                            Json::object()
                                .with("node", node)
                                .with("port", u64::from(rec.port))
                                .with("payload", rec.payload),
                        ),
                    );
                }
                TraceEvent::RecoveryRto => {
                    // The RTO fire renders as a complete span covering the
                    // backed-off timeout window it arms, so stacked
                    // retries read as nested spans per flow.
                    any_recovery = true;
                    let tid = u64::from(rec.flow);
                    let rto_ns = rec.payload & ((1 << 48) - 1);
                    events.push(
                        ev(&format!("rto flow {}", rec.flow), "X", ts, 7, tid)
                            .with("dur", rto_ns as f64 / 1e3)
                            .with(
                                "args",
                                Json::object()
                                    .with("retries", rec.payload >> 48)
                                    .with("rto_ns", rto_ns),
                            ),
                    );
                }
                TraceEvent::RecoveryNack | TraceEvent::RecoveryRepair => {
                    any_recovery = true;
                    let tid = u64::from(rec.flow);
                    events.push(ev(kind.name(), "i", ts, 7, tid).with("s", "t").with(
                        "args",
                        Json::object().with("node", node).with("payload", rec.payload),
                    ));
                }
            }
        }
    }

    // Close every span still open at the end of the trace.
    for ((pid, tid), n) in &open {
        for _ in 0..*n {
            events.push(ev("", "E", end_ts, *pid, *tid));
        }
    }

    // Name the tracks (metadata events may appear anywhere in the array).
    // The fluid and recovery tracks appear only when matching records
    // exist, so exports without them stay byte-identical to older
    // goldens.
    let mut pids: Vec<(u64, &str)> =
        vec![(1, "PFC wire"), (2, "MMU"), (3, "flows"), (4, "occupancy"), (5, "faults")];
    if any_fluid {
        pids.push((6, "fluid"));
    }
    if any_recovery {
        pids.push((7, "recovery"));
    }
    for &(pid, pname) in &pids {
        events.push(
            Json::object()
                .with("name", "process_name")
                .with("ph", "M")
                .with("pid", pid)
                .with("args", Json::object().with("name", pname)),
        );
    }
    for ((pid, tid), label) in &names {
        events.push(
            Json::object()
                .with("name", "thread_name")
                .with("ph", "M")
                .with("pid", *pid)
                .with("tid", *tid)
                .with("args", Json::object().with("name", label.as_str())),
        );
    }

    Json::object().with("traceEvents", events).with("displayTimeUnit", "ns").with(
        "otherData",
        Json::object()
            .with("provenance", provenance)
            .with("simulations", logs.len())
            .with("records", logs.iter().map(|l| l.records.len()).sum::<usize>())
            .with("dropped_records", dropped_total),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_parsing_accepts_names_numbers_and_garbage() {
        assert_eq!(TraceMask::parse("all"), TraceMask::ALL);
        assert_eq!(TraceMask::parse("pfc,flow"), TraceMask::PFC.union(TraceMask::FLOW));
        assert_eq!(TraceMask::parse(" mmu , nope "), TraceMask::MMU);
        assert_eq!(TraceMask::parse("63"), TraceMask::ALL);
        assert_eq!(
            TraceMask::parse("15"),
            TraceMask::PFC.union(TraceMask::FLOW).union(TraceMask::MMU).union(TraceMask::FAULT)
        );
        assert_eq!(TraceMask::parse("fluid"), TraceMask::FLUID);
        assert_eq!(TraceMask::parse("recovery"), TraceMask::RECOVERY);
        assert_eq!(TraceMask::parse(""), TraceMask::NONE);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(t.is_off());
        trace_event!(t, TraceEvent::FlowStart, { flow: 1 });
        assert!(t.log(TraceKey::default()).records.is_empty());
    }

    #[test]
    fn masked_category_does_not_evaluate_arguments() {
        let t = Tracer::new(TraceMask::PFC, 16);
        let mut evaluated = false;
        trace_event!(t, TraceEvent::FlowStart, {
            flow: {
                evaluated = true;
                1
            }
        });
        assert!(!evaluated, "masked-off trace point evaluated its arguments");
        assert!(t.log(TraceKey::default()).records.is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::new(TraceMask::FLOW, 4);
        for i in 0..10u32 {
            t.tick(Time::from_ns(u64::from(i)));
            trace_event!(t, TraceEvent::FlowStart, { flow: i });
        }
        let log = t.log(TraceKey::default());
        assert_eq!(log.records.len(), 4);
        assert_eq!(log.dropped, 6);
        let flows: Vec<u32> = log.records.iter().map(|r| r.flow).collect();
        assert_eq!(flows, vec![6, 7, 8, 9], "oldest records must be overwritten first");
        assert_eq!(log.records[0].at, Time::from_ns(6), "tick must stamp the record clock");
    }

    #[test]
    fn encode_is_32_bytes_per_record_plus_header() {
        let t = Tracer::new(TraceMask::FLOW, 8);
        trace_event!(t, TraceEvent::FlowStart, { flow: 3, payload: 99 });
        let log = t.log(TraceKey { seed: 7, tag: 1 });
        let bytes = log.encode();
        assert_eq!(bytes.len(), 32 + 32);
        assert_eq!(&bytes[..4], b"DSHT");
    }

    #[test]
    fn capture_collects_per_simulation_logs_sorted_by_key() {
        let ((), logs) = capture(TraceMask::FLOW, 16, || {
            for seed in [3u64, 1, 2] {
                let t = Tracer::for_simulation(&TraceConfig::off(), TraceKey { seed, tag: 0 });
                assert!(!t.is_off(), "session must enable the tracer");
                trace_event!(t, TraceEvent::FlowStart, { flow: seed as u32 });
            }
        });
        let seeds: Vec<u64> = logs.iter().map(|l| l.key.seed).collect();
        assert_eq!(seeds, vec![1, 2, 3]);
        assert!(logs.iter().all(|l| l.records.len() == 1));
        // Outside a session, an off config stays off (env permitting).
        let t = Tracer::for_simulation(&TraceConfig::off(), TraceKey::default());
        let _ = t; // mask depends on the environment; just must not panic
    }

    #[test]
    fn chrome_export_round_trips_through_json_parse() {
        let t = Tracer::new(TraceMask::ALL, 64);
        t.tick(Time::from_us(1));
        trace_event!(t, TraceEvent::FlowStart, { flow: 1, node: 0, payload: 4096 });
        trace_event!(t, TraceEvent::PfcPause, { node: 2, port: 1, class: 0 });
        t.tick(Time::from_us(3));
        trace_event!(t, TraceEvent::Retransmit, { flow: 1, payload: (2 << 48) | 9000 });
        trace_event!(t, TraceEvent::PfcResume, { node: 2, port: 1, class: 0 });
        trace_event!(t, TraceEvent::LinkDown, { node: 4, payload: 6 });
        trace_event!(t, TraceEvent::OccShared, { node: 2, payload: 123_456 });
        let log = t.log(TraceKey::default());
        let doc = chrome_trace(&[log], Json::object().with("seed", 1u64));
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("chrome trace must be valid JSON");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        let ph = |p: &str| {
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some(p)).count()
        };
        assert!(ph("B") >= 2, "flow + pause spans must open");
        assert!(ph("E") >= 2, "every span must close (flow span force-closed at end)");
        assert!(ph("i") >= 2, "retransmit marker + fault instant");
        assert_eq!(ph("C"), 1, "one occupancy counter sample");
    }

    #[test]
    fn flight_guard_dumps_only_on_panic() {
        let t = Tracer::new(TraceMask::FLOW, 8);
        trace_event!(t, TraceEvent::FlowStart, { flow: 1 });
        let guard = FlightGuard::arm(&t, "calm");
        drop(guard); // no panic: nothing printed, nothing to assert beyond "no crash"
        let err = std::panic::catch_unwind(|| {
            let _guard = FlightGuard::arm(&t, "stormy");
            panic!("boom");
        });
        assert!(err.is_err());
    }
}
