//! Deterministic random numbers for reproducible simulations.
//!
//! We implement xoshiro256** (seeded through SplitMix64) directly rather
//! than relying on an external generator, so that a given seed produces the
//! same experiment on every platform and dependency version — the property
//! the paper's "each scheme is tested 100 times" methodology depends on.

/// Derives the `index`-th seed of the SplitMix64 stream rooted at `base`.
///
/// Each index yields a statistically independent seed, and the mapping
/// depends only on `(base, index)` — never on evaluation order — which is
/// what lets [`crate::exec::par_map_seeded`] hand every experiment point
/// its own stream while staying bit-identical at any thread count.
///
/// # Example
///
/// ```
/// use dsh_simcore::split_seed;
/// assert_eq!(split_seed(42, 3), split_seed(42, 3));
/// assert_ne!(split_seed(42, 3), split_seed(42, 4));
/// ```
#[must_use]
pub fn split_seed(base: u64, index: u64) -> u64 {
    // SplitMix64 with the stream position folded into the state, per
    // Vigna's reference implementation (same constants as `SimRng::new`).
    let sm = base.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E3779B97F4A7C15));
    let mut z = sm;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic pseudo-random number generator (xoshiro256**).
///
/// # Example
///
/// ```
/// use dsh_simcore::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.gen_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion, per Vigna's reference implementation.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SimRng { s: [next(), next(), next(), next()] }
    }

    /// Derives an independent child generator; use to give each component
    /// its own stream without correlating them.
    #[must_use]
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range requires n > 0");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // Rejection zone check (rare path).
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(n as u64) as usize
    }

    /// Samples an exponential random variable with the given mean.
    ///
    /// Used for Poisson inter-arrival times (the paper's flow arrivals).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "exponential mean must be positive");
        let u = loop {
            let u = self.gen_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.gen_index(items.len())]
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_bounded_and_covers() {
        let mut r = SimRng::new(4);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.gen_range(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.gen_exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "empirical mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn fork_streams_are_uncorrelated() {
        let mut parent = SimRng::new(8);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_seed_is_order_free_and_spreads() {
        let a: Vec<u64> = (0..64).map(|i| split_seed(7, i)).collect();
        let b: Vec<u64> = (0..64).rev().map(|i| split_seed(7, i)).collect();
        assert_eq!(a, b.into_iter().rev().collect::<Vec<_>>());
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "derived seeds collided");
        // Streams rooted at different bases diverge.
        let same = (0..64).filter(|&i| split_seed(7, i) == split_seed(8, i)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = SimRng::new(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }
}
