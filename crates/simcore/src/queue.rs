//! The event calendar: a time-ordered priority queue with deterministic
//! FIFO tie-breaking and a same-instant fast lane.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A pending event in the calendar.
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event calendar.
///
/// Events pop in nondecreasing time order; events scheduled for the same
/// instant pop in the order they were pushed, which makes whole-simulation
/// runs reproducible.
///
/// Internally the calendar keeps two structures ordered by the same
/// `(time, seq)` key: a binary heap for future events and a FIFO **fast
/// lane** for events pushed at exactly the current instant (the time of
/// the most recently popped event). `Scheduler::immediately` and the PFC
/// pause/resume cascades hit the same-instant case constantly, and the
/// lane turns those O(log n) heap round-trips into O(1) deque pushes.
/// Every pop compares the lane front against the heap top by the full
/// `(time, seq)` key, so the observable pop order is identical to a pure
/// heap — a property `tests::prop_matches_pure_heap` checks operation by
/// operation.
///
/// # Example
///
/// ```
/// use dsh_simcore::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(10), 'b');
/// q.push(Time::from_ns(10), 'c');
/// q.push(Time::from_ns(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Events at exactly `lane_time`, FIFO by construction (`seq` kept for
    /// the cross-structure comparison in `pop`).
    lane: VecDeque<(u64, E)>,
    lane_time: Time,
    /// Time of the most recently popped event; pushes at this instant take
    /// the fast lane.
    now: Time,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty calendar with room for `capacity` pending events
    /// before the heap reallocates.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            lane: VecDeque::new(),
            lane_time: Time::ZERO,
            now: Time::ZERO,
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    #[inline]
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        // Same-instant fast lane: anything scheduled for "now" lands behind
        // every pending event at this instant anyway (its seq is the
        // largest), so a FIFO append preserves the (time, seq) contract.
        if time == self.now && (self.lane.is_empty() || self.lane_time == time) {
            self.lane_time = time;
            self.lane.push_back((seq, event));
        } else {
            self.heap.push(Entry { time, seq, event });
        }
    }

    /// Whether the earliest pending event is the lane front (false: heap
    /// top, or empty lane).
    #[inline]
    fn lane_first(&self) -> bool {
        match (self.lane.front(), self.heap.peek()) {
            (Some(_), None) => true,
            (Some(&(seq, _)), Some(top)) => (self.lane_time, seq) < (top.time, top.seq),
            (None, _) => false,
        }
    }

    /// Removes and returns the earliest event, or `None` if the calendar is
    /// empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let popped = if self.lane_first() {
            self.lane.pop_front().map(|(_, event)| (self.lane_time, event))
        } else {
            self.heap.pop().map(|e| (e.time, e.event))
        };
        if let Some((t, _)) = popped {
            self.now = t;
        }
        popped
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `deadline`; leaves the calendar untouched otherwise.
    ///
    /// This is the run-loop primitive: one call replaces the
    /// `peek_time` + `pop` pair, touching the heap once.
    #[inline]
    pub fn pop_before(&mut self, deadline: Time) -> Option<(Time, E)> {
        let (t, event) = if self.lane_first() {
            if self.lane_time > deadline {
                return None;
            }
            let (_, event) = self.lane.pop_front().expect("lane_first implies non-empty lane");
            (self.lane_time, event)
        } else {
            if self.heap.peek().is_none_or(|top| top.time > deadline) {
                return None;
            }
            let e = self.heap.pop().expect("heap top vanished");
            (e.time, e.event)
        };
        self.now = t;
        Some((t, event))
    }

    /// Removes and returns the earliest event if it fires strictly before
    /// `bound`; leaves the calendar untouched otherwise.
    ///
    /// This is the conservative-window primitive: a lookahead window
    /// `[start, stop)` is half-open, so the partition driver drains
    /// events with `pop_strictly_before(stop)` and leaves everything at
    /// `stop` itself for the next window (after cross-partition inboxes
    /// for that instant have been merged).
    #[inline]
    pub fn pop_strictly_before(&mut self, bound: Time) -> Option<(Time, E)> {
        let (t, event) = if self.lane_first() {
            if self.lane_time >= bound {
                return None;
            }
            let (_, event) = self.lane.pop_front().expect("lane_first implies non-empty lane");
            (self.lane_time, event)
        } else {
            if self.heap.peek().is_none_or(|top| top.time >= bound) {
                return None;
            }
            let e = self.heap.pop().expect("heap top vanished");
            (e.time, e.event)
        };
        self.now = t;
        Some((t, event))
    }

    /// Removes and returns the earliest event only if it fires at exactly
    /// `now` and satisfies `pred`; leaves the calendar untouched
    /// otherwise.
    ///
    /// This honors the full `(time, seq)` order — it pops the event that
    /// an ordinary [`EventQueue::pop`] would pop next, never one behind
    /// it — so a dispatcher can fuse an adjacent same-instant pair
    /// without perturbing the event order.
    #[inline]
    pub fn pop_current_if(&mut self, now: Time, pred: impl FnOnce(&E) -> bool) -> Option<E> {
        if self.lane_first() {
            if self.lane_time != now || !pred(&self.lane.front()?.1) {
                return None;
            }
            self.lane.pop_front().map(|(_, e)| e)
        } else {
            if self.heap.peek().is_none_or(|top| top.time != now || !pred(&top.event)) {
                return None;
            }
            self.heap.pop().map(|e| e.event)
        }
    }

    /// Returns the firing time of the earliest pending event.
    #[must_use]
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        if self.lane_first() {
            Some(self.lane_time)
        } else {
            self.heap.peek().map(|e| e.time)
        }
    }

    /// Number of pending events.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len() + self.lane.len()
    }

    /// Whether the calendar has no pending events.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.lane.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The seed implementation: one binary heap, no fast lane. Kept as the
    /// ordering oracle for the equivalence property below.
    struct PureHeap<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
    }

    impl<E> PureHeap<E> {
        fn new() -> Self {
            PureHeap { heap: BinaryHeap::new(), next_seq: 0 }
        }
        fn push(&mut self, time: Time, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { time, seq, event });
        }
        fn pop(&mut self) -> Option<(Time, E)> {
            self.heap.pop().map(|e| (e.time, e.event))
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_time_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(7), ());
        q.push(Time::from_ns(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
    }

    #[test]
    fn fast_lane_interleaves_with_pending_heap_events() {
        // Events 1 and 2 are scheduled for t=10 before the clock gets
        // there (heap); popping 1 advances the clock, so 3 and 4 take the
        // lane — yet 2 (earlier seq) must still pop before them.
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(10), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
        q.push(Time::from_ns(10), 3);
        q.push(Time::from_ns(10), 4);
        assert!(!q.lane.is_empty(), "same-instant pushes should take the lane");
        assert_eq!(q.pop(), Some((Time::from_ns(10), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(10), 3)));
        assert_eq!(q.pop(), Some((Time::from_ns(10), 4)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_cascade_stays_in_lane() {
        // A pause/resume-style cascade: every handler schedules a
        // follow-up at the current instant.
        let mut q = EventQueue::new();
        q.push(Time::from_ns(5), 0);
        let mut order = Vec::new();
        while let Some((t, i)) = q.pop() {
            order.push(i);
            if i < 50 {
                q.push(t, i + 1);
                assert!(!q.lane.is_empty(), "cascade event {i} missed the lane");
            }
        }
        assert_eq!(order, (0..=50).collect::<Vec<_>>());
        assert_eq!(q.heap.len(), 0, "cascade should never have touched the heap after seed");
    }

    #[test]
    fn pop_before_respects_deadline_for_both_structures() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), 1);
        assert_eq!(q.pop_before(Time::from_ns(9)), None);
        assert_eq!(q.pop_before(Time::from_ns(10)), Some((Time::from_ns(10), 1)));
        // Lane entry at now=10 vs a deadline before/after it.
        q.push(Time::from_ns(10), 2);
        assert!(!q.lane.is_empty());
        assert_eq!(q.pop_before(Time::from_ns(9)), None);
        assert_eq!(q.pop_before(Time::from_ns(10)), Some((Time::from_ns(10), 2)));
        assert_eq!(q.pop_before(Time::MAX), None);
    }

    #[test]
    fn pop_strictly_before_is_exclusive_for_both_structures() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), 1);
        assert_eq!(q.pop_strictly_before(Time::from_ns(10)), None);
        assert_eq!(q.pop_strictly_before(Time::from_ns(11)), Some((Time::from_ns(10), 1)));
        // Lane entry at now=10 vs an exclusive bound at/after it.
        q.push(Time::from_ns(10), 2);
        assert!(!q.lane.is_empty());
        assert_eq!(q.pop_strictly_before(Time::from_ns(10)), None);
        assert_eq!(q.pop_strictly_before(Time::from_ns(11)), Some((Time::from_ns(10), 2)));
        assert_eq!(q.pop_strictly_before(Time::MAX), None);
    }

    #[test]
    fn pop_current_if_only_takes_the_true_next_event() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(10), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
        // Next is 2 (heap); a predicate rejecting it must not skip ahead.
        assert_eq!(q.pop_current_if(Time::from_ns(10), |&e| e == 3), None);
        assert_eq!(q.pop_current_if(Time::from_ns(10), |&e| e == 2), Some(2));
        // Lane path: same-instant push after the pops above.
        q.push(Time::from_ns(10), 4);
        assert!(!q.lane.is_empty());
        assert_eq!(q.pop_current_if(Time::from_ns(9), |_| true), None, "wrong instant");
        assert_eq!(q.pop_current_if(Time::from_ns(10), |&e| e == 4), Some(4));
        // Future events never match the current instant.
        q.push(Time::from_ns(20), 5);
        assert_eq!(q.pop_current_if(Time::from_ns(10), |_| true), None);
        assert_eq!(q.pop(), Some((Time::from_ns(20), 5)));
    }

    proptest! {
        /// Popping always yields a nondecreasing time sequence, and events
        /// with equal times preserve insertion order.
        #[test]
        fn prop_order(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Time::from_ns(t), i);
            }
            let mut last: Option<(Time, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li);
                    }
                }
                last = Some((t, i));
            }
        }

        /// Event-trace equivalence against the pure-heap oracle: an
        /// arbitrary interleaving of pushes (at `now + delta`, with delta
        /// frequently 0 to exercise the fast lane) and pops produces the
        /// exact same (time, event) trace from both implementations.
        #[test]
        fn prop_matches_pure_heap(
            ops in proptest::collection::vec((0u8..4, 0u64..50), 1..400)
        ) {
            let mut fast = EventQueue::new();
            let mut oracle = PureHeap::new();
            let mut now = Time::ZERO;
            let mut next_id = 0u32;
            for (kind, delta) in ops {
                // kind 0: pop; 1: push at now (fast-lane candidate);
                // 2-3: push at now + delta.
                if kind == 0 {
                    let a = fast.pop();
                    let b = oracle.pop();
                    prop_assert_eq!(&a, &b);
                    if let Some((t, _)) = a {
                        now = t;
                    }
                } else {
                    let at = if kind == 1 { now } else { now + crate::Delta::from_ns(delta) };
                    fast.push(at, next_id);
                    oracle.push(at, next_id);
                    next_id += 1;
                }
                prop_assert_eq!(fast.peek_time(), oracle.heap.peek().map(|e| e.time));
            }
            // Drain both: the tails must match too.
            loop {
                let a = fast.pop();
                let b = oracle.pop();
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
