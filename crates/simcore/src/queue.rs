//! The event calendar: a time-ordered priority queue with deterministic
//! FIFO tie-breaking.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event in the calendar.
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event calendar.
///
/// Events pop in nondecreasing time order; events scheduled for the same
/// instant pop in the order they were pushed, which makes whole-simulation
/// runs reproducible.
///
/// # Example
///
/// ```
/// use dsh_simcore::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(10), 'b');
/// q.push(Time::from_ns(10), 'c');
/// q.push(Time::from_ns(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the calendar is
    /// empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the firing time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar has no pending events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_time_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(7), ());
        q.push(Time::from_ns(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
    }

    proptest! {
        /// Popping always yields a nondecreasing time sequence, and events
        /// with equal times preserve insertion order.
        #[test]
        fn prop_order(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Time::from_ns(t), i);
            }
            let mut last: Option<(Time, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li);
                    }
                }
                last = Some((t, i));
            }
        }
    }
}
