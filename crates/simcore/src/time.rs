//! Simulated time: absolute instants ([`Time`]) and durations ([`Delta`]).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, in picoseconds since the start of
/// the simulation.
///
/// Arithmetic follows instant/duration algebra: `Time + Delta = Time`,
/// `Time - Time = Delta`. Subtracting a later instant from an earlier one
/// panics (in debug and release), as it always indicates a causality bug in
/// the simulator.
///
/// # Example
///
/// ```
/// use dsh_simcore::{Delta, Time};
/// let t = Time::from_us(2) + Delta::from_ns(500);
/// assert_eq!(t.as_ps(), 2_500_000);
/// assert_eq!(t - Time::from_us(2), Delta::from_ns(500));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time, in picoseconds.
///
/// # Example
///
/// ```
/// use dsh_simcore::Delta;
/// assert_eq!(Delta::from_us(1), Delta::from_ns(1000));
/// assert_eq!(Delta::from_ns(3) * 4, Delta::from_ns(12));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Delta(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for timers that are not armed.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates an instant from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates an instant from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates an instant from milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000_000)
    }

    /// Creates an instant from seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000_000)
    }

    /// Returns the raw picosecond count.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the instant as (truncated) nanoseconds.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the instant as fractional microseconds.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the instant as fractional milliseconds.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the instant as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future (useful for idempotent bookkeeping).
    #[must_use]
    pub fn saturating_since(self, earlier: Time) -> Delta {
        Delta(self.0.saturating_sub(earlier.0))
    }
}

impl Delta {
    /// The zero-length duration.
    pub const ZERO: Delta = Delta(0);

    /// Creates a duration from picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        Delta(ps)
    }

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        Delta(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        Delta(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        Delta(ms * 1_000_000_000)
    }

    /// Creates a duration from seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Delta(s * 1_000_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative");
        Delta((s * 1e12).round() as u64)
    }

    /// Returns the raw picosecond count.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the duration as (truncated) nanoseconds.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional microseconds.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional milliseconds.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }
}

impl Add<Delta> for Time {
    type Output = Time;
    fn add(self, rhs: Delta) -> Time {
        Time(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign<Delta> for Time {
    fn add_assign(&mut self, rhs: Delta) {
        *self = *self + rhs;
    }
}

impl Sub<Delta> for Time {
    type Output = Time;
    fn sub(self, rhs: Delta) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("simulated time underflow"))
    }
}

impl Sub<Time> for Time {
    type Output = Delta;
    fn sub(self, rhs: Time) -> Delta {
        Delta(self.0.checked_sub(rhs.0).expect("negative duration: rhs instant is later"))
    }
}

impl Add for Delta {
    type Output = Delta;
    fn add(self, rhs: Delta) -> Delta {
        Delta(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for Delta {
    fn add_assign(&mut self, rhs: Delta) {
        *self = *self + rhs;
    }
}

impl Sub for Delta {
    type Output = Delta;
    fn sub(self, rhs: Delta) -> Delta {
        Delta(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for Delta {
    fn sub_assign(&mut self, rhs: Delta) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Delta {
    type Output = Delta;
    fn mul(self, rhs: u64) -> Delta {
        Delta(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for Delta {
    type Output = Delta;
    fn div(self, rhs: u64) -> Delta {
        Delta(self.0 / rhs)
    }
}

impl Sum for Delta {
    fn sum<I: Iterator<Item = Delta>>(iter: I) -> Delta {
        iter.fold(Delta::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({}ns)", self.as_ns())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Delta({}ns)", self.as_ns())
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_are_consistent() {
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Delta::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn instant_duration_algebra() {
        let a = Time::from_us(10);
        let b = a + Delta::from_ns(250);
        assert_eq!(b - a, Delta::from_ns(250));
        assert_eq!(b - Delta::from_ns(250), a);
        assert_eq!((b - a) * 4, Delta::from_us(1));
        assert_eq!(Delta::from_us(1) / 4, Delta::from_ns(250));
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_panics() {
        let _ = Time::from_ns(1) - Time::from_ns(2);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Time::from_ns(1).saturating_since(Time::from_ns(5)), Delta::ZERO);
        assert_eq!(Time::from_ns(5).saturating_since(Time::from_ns(1)), Delta::from_ns(4));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Delta::from_secs_f64(1e-12), Delta::from_ps(1));
        assert_eq!(Delta::from_secs_f64(0.5), Delta::from_ms(500));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Time::from_us(3)), "3.000us");
        assert_eq!(format!("{:?}", Delta::from_ns(7)), "Delta(7ns)");
    }

    #[test]
    fn sum_of_deltas() {
        let total: Delta = [Delta::from_ns(1), Delta::from_ns(2)].into_iter().sum();
        assert_eq!(total, Delta::from_ns(3));
    }
}
