//! Deterministic parallel execution of independent experiment points.
//!
//! Every paper figure is a sweep of mutually independent simulation runs,
//! so the natural speedup is embarrassingly-parallel replication across
//! runs (the same answer ns-3-style simulators reach). This module
//! provides a registry-free worker pool built on [`std::thread::scope`] —
//! the build environment has no crates.io access, so rayon is not an
//! option — with three guarantees the figure pipelines rely on:
//!
//! 1. **Order preservation**: `par_map(items, f)` returns results in input
//!    order regardless of which worker finished first.
//! 2. **Panic propagation**: a panicking closure panics the caller (after
//!    all workers are joined), exactly like the serial loop it replaces.
//! 3. **Seed independence**: [`par_map_seeded`] derives one seed per item
//!    from the [`crate::split_seed`] SplitMix64 stream, keyed on the item
//!    *index*, so results are bit-identical at any thread count.
//!
//! # Example
//!
//! ```
//! use dsh_simcore::exec::Executor;
//! let ex = Executor::new(4);
//! let squares = ex.par_map((0u64..8).collect(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use crate::rng::split_seed;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable overriding the default worker count.
///
/// `0` or an unparsable value means "auto" (available parallelism).
pub const THREADS_ENV: &str = "DSH_THREADS";

/// Environment variable overriding the default intra-run worker count
/// for partitioned (conservative parallel) simulations.
///
/// `0` or an unparsable value means "auto" (available parallelism);
/// `1` forces the serial engine. This is deliberately separate from
/// [`THREADS_ENV`]: sweeps parallelize *across* runs, workers
/// parallelize *inside* one run, and a host has to split its cores
/// between the two.
pub const WORKERS_ENV: &str = "DSH_WORKERS";

/// Interprets a `DSH_WORKERS`-style value exactly like [`threads_from`]:
/// `None`, `"0"`, or garbage mean "auto"; any positive integer is taken
/// literally.
#[must_use]
pub fn workers_from(value: Option<&str>) -> Option<usize> {
    threads_from(value)
}

/// Environment variable enabling sweep progress lines: with
/// `DSH_PROGRESS=1`, `par_map` reports completed/total points and
/// elapsed wall time on stderr as a long sweep advances.
pub const PROGRESS_ENV: &str = "DSH_PROGRESS";

/// Whether `DSH_PROGRESS=1` is set (read once per process).
fn progress_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var(PROGRESS_ENV).is_ok_and(|v| v == "1"))
}

/// Interprets a `DSH_THREADS`-style value: `None`, `"0"`, or garbage mean
/// "auto"; any positive integer is taken literally.
#[must_use]
pub fn threads_from(value: Option<&str>) -> Option<usize> {
    value.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

/// The worker count used when nothing is configured: the machine's
/// available parallelism (1 if that cannot be determined).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// A fixed-width worker pool for independent experiment points.
///
/// The pool is just a thread count: workers are scoped to each `par_map`
/// call (no idle threads between sweeps, no registry, no unsafe).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// A pool of `threads` workers (`0` means auto).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Executor { threads: if threads == 0 { default_threads() } else { threads } }
    }

    /// A single-threaded pool (`par_map` degenerates to a plain loop).
    #[must_use]
    pub fn serial() -> Self {
        Executor { threads: 1 }
    }

    /// Pool sized from `DSH_THREADS`, falling back to available
    /// parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        Executor::new(threads_from(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or(0))
    }

    /// Worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool, returning results in input
    /// order.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by `f` (after joining all
    /// workers).
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n <= 1 {
            let progress = progress_enabled() && n > 1;
            let started = std::time::Instant::now();
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    let r = f(item);
                    if progress {
                        eprintln!(
                            "[dsh] {}/{n} points, {:.1}s elapsed",
                            i + 1,
                            started.elapsed().as_secs_f64()
                        );
                    }
                    r
                })
                .collect();
        }
        let workers = self.threads.min(n);
        // Work queue: each worker claims the next unclaimed (index, item).
        // The lock is held only for the claim itself, never across `f`, so
        // contention is negligible next to a whole simulation run.
        let work = Mutex::new(items.into_iter().enumerate());
        let f = &f;
        // Progress is observed from a dedicated reporter thread; workers
        // only bump an atomic, so enabling it cannot perturb determinism.
        let completed = AtomicUsize::new(0);
        let finished = AtomicBool::new(false);
        std::thread::scope(|s| {
            let reporter = progress_enabled().then(|| {
                s.spawn(|| {
                    let started = std::time::Instant::now();
                    let mut last = 0;
                    loop {
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        let done = completed.load(Ordering::Relaxed);
                        if done != last {
                            last = done;
                            eprintln!(
                                "[dsh] {done}/{n} points, {:.1}s elapsed",
                                started.elapsed().as_secs_f64()
                            );
                        }
                        if finished.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                })
            });
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let claimed = work.lock().expect("work queue poisoned").next();
                            match claimed {
                                Some((i, item)) => {
                                    done.push((i, f(item)));
                                    completed.fetch_add(1, Ordering::Relaxed);
                                }
                                None => return done,
                            }
                        }
                    })
                })
                .collect();
            let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
            let mut panic = None;
            for h in handles {
                match h.join() {
                    Ok(done) => {
                        for (i, r) in done {
                            slots[i] = Some(r);
                        }
                    }
                    Err(payload) => panic = panic.or(Some(payload)),
                }
            }
            finished.store(true, Ordering::Relaxed);
            if let Some(r) = reporter {
                let _ = r.join();
            }
            if let Some(payload) = panic {
                resume_unwind(payload);
            }
            slots.into_iter().map(|r| r.expect("worker skipped a claimed item")).collect()
        })
    }

    /// Like [`Executor::par_map`], but also hands `f` a per-item seed
    /// derived from `base_seed` and the item's index via
    /// [`crate::split_seed`] — independent streams per point, identical at
    /// any thread count.
    pub fn par_map_seeded<T, R, F>(&self, base_seed: u64, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T, u64) -> R + Sync,
    {
        let seeded: Vec<(T, u64)> = items
            .into_iter()
            .enumerate()
            .map(|(i, x)| (x, split_seed(base_seed, i as u64)))
            .collect();
        self.par_map(seeded, |(x, seed)| f(x, seed))
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

/// [`Executor::par_map`] on the environment-configured pool
/// (`DSH_THREADS`, else available parallelism).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    Executor::from_env().par_map(items, f)
}

/// [`Executor::par_map_seeded`] on the environment-configured pool.
pub fn par_map_seeded<T, R, F>(base_seed: u64, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T, u64) -> R + Sync,
{
    Executor::from_env().par_map_seeded(base_seed, items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let ex = Executor::new(8);
        // Make early items the slowest so completion order inverts input
        // order if anything relies on it.
        let out = ex.par_map((0u64..64).collect(), |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 10
        });
        assert_eq!(out, (0u64..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn identical_at_any_thread_count() {
        let run = |threads| {
            Executor::new(threads).par_map_seeded(99, (0..32).collect::<Vec<u32>>(), |i, seed| {
                let mut rng = crate::SimRng::new(seed);
                (i, rng.next_u64())
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(7));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let ex = Executor::new(4);
        assert_eq!(ex.par_map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(ex.par_map(vec![5u8], |x| x + 1), vec![6]);
    }

    #[test]
    #[should_panic(expected = "point 3 exploded")]
    fn propagates_worker_panics() {
        Executor::new(4).par_map((0..16).collect::<Vec<u32>>(), |i| {
            assert!(i != 3, "point {i} exploded");
            i
        });
    }

    #[test]
    fn threads_from_parses_auto_and_explicit() {
        assert_eq!(threads_from(None), None);
        assert_eq!(threads_from(Some("0")), None);
        assert_eq!(threads_from(Some("nope")), None);
        assert_eq!(threads_from(Some("3")), Some(3));
        assert_eq!(threads_from(Some(" 12 ")), Some(12));
    }

    #[test]
    fn zero_threads_means_auto() {
        assert_eq!(Executor::new(0).threads(), default_threads());
        assert!(Executor::serial().threads() == 1);
    }
}
