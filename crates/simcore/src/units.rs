//! Physical units used throughout the simulator: link bandwidth and byte
//! counts.

use crate::time::Delta;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Link bandwidth in bits per second.
///
/// The key operation is [`Bandwidth::tx_delay`], which converts a frame size
/// into exact wire time (picosecond resolution, rounded up so a frame never
/// finishes "early").
///
/// # Example
///
/// ```
/// use dsh_simcore::{Bandwidth, Delta};
/// let c = Bandwidth::from_gbps(100);
/// // 1500 B at 100 Gb/s = 120 ns.
/// assert_eq!(c.tx_delay(1500), Delta::from_ns(120));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a bandwidth from raw bits per second.
    #[must_use]
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Creates a bandwidth from megabits per second.
    #[must_use]
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// Creates a bandwidth from gigabits per second.
    #[must_use]
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Returns the bandwidth in bits per second.
    #[must_use]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Returns the bandwidth in fractional Gb/s.
    #[must_use]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the bandwidth in bytes per second.
    #[must_use]
    pub const fn bytes_per_sec(self) -> u64 {
        self.0 / 8
    }

    /// Time to serialize `bytes` onto the wire, rounded up to the next
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    #[must_use]
    pub fn tx_delay(self, bytes: u64) -> Delta {
        assert!(self.0 > 0, "cannot transmit on a zero-bandwidth link");
        // ps = bytes * 8 bits * 1e12 / bps, computed in u128 to avoid
        // overflow for large transfers.
        let num = (bytes as u128) * 8 * 1_000_000_000_000u128;
        let ps = num.div_ceil(self.0 as u128);
        Delta::from_ps(u64::try_from(ps).expect("transmission delay overflow"))
    }

    /// Number of whole bytes that can be serialized in `d`.
    #[must_use]
    pub fn bytes_in(self, d: Delta) -> u64 {
        let bits = (self.0 as u128) * (d.as_ps() as u128) / 1_000_000_000_000u128;
        u64::try_from(bits / 8).expect("byte count overflow")
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 && self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}Gbps", self.0 / 1_000_000_000)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

/// A byte count with convenience constructors for buffer sizing.
///
/// # Example
///
/// ```
/// use dsh_simcore::ByteSize;
/// assert_eq!(ByteSize::mib(16).as_u64(), 16 * 1024 * 1024);
/// assert_eq!(ByteSize::kib(3) + ByteSize::bytes(1), ByteSize::bytes(3073));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a byte count.
    #[must_use]
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// Creates a byte count from binary kilobytes (1024 B).
    #[must_use]
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// Creates a byte count from binary megabytes (1024² B).
    #[must_use]
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// Returns the raw byte count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the byte count as fractional MiB.
    #[must_use]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_add(rhs.0).expect("byte size overflow"))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_sub(rhs.0).expect("byte size underflow"))
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        *self = *self - rhs;
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.2}MiB", self.as_mib_f64())
        } else if self.0 >= 1024 {
            write!(f, "{:.1}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Delta;

    #[test]
    fn tx_delay_exact_values() {
        // 1500 B at 40 Gb/s = 300 ns.
        assert_eq!(Bandwidth::from_gbps(40).tx_delay(1500), Delta::from_ns(300));
        // 64 B at 100 Gb/s = 5.12 ns = 5120 ps.
        assert_eq!(Bandwidth::from_gbps(100).tx_delay(64), Delta::from_ps(5120));
        // Zero bytes serialize instantly.
        assert_eq!(Bandwidth::from_gbps(100).tx_delay(0), Delta::ZERO);
    }

    #[test]
    fn tx_delay_rounds_up() {
        // 1 byte at 3 bps: 8/3 s -> must round up, not truncate.
        let d = Bandwidth::from_bps(3).tx_delay(1);
        assert_eq!(d.as_ps(), 2_666_666_666_667);
    }

    #[test]
    fn bytes_in_inverts_tx_delay() {
        let c = Bandwidth::from_gbps(100);
        for &n in &[1u64, 64, 1500, 9000, 1_000_000] {
            let d = c.tx_delay(n);
            let back = c.bytes_in(d);
            assert!(back >= n && back <= n + 1, "{n} -> {back}");
        }
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth::from_gbps(100).to_string(), "100Gbps");
        assert_eq!(Bandwidth::from_mbps(40).to_string(), "40000000bps");
    }

    #[test]
    fn byte_size_arithmetic_and_display() {
        let b = ByteSize::mib(12);
        assert_eq!(b.as_u64(), 12 * 1024 * 1024);
        assert_eq!((b - ByteSize::mib(4)).as_mib_f64(), 8.0);
        assert_eq!(ByteSize::bytes(100).saturating_sub(ByteSize::kib(1)), ByteSize::ZERO);
        assert_eq!(ByteSize::bytes(512).to_string(), "512B");
        assert_eq!(ByteSize::kib(2).to_string(), "2.0KiB");
        assert_eq!(ByteSize::mib(16).to_string(), "16.00MiB");
    }

    #[test]
    fn bytes_per_sec_matches() {
        assert_eq!(Bandwidth::from_gbps(100).bytes_per_sec(), 12_500_000_000);
    }
}
