//! A bounded free-list of boxed objects for allocation-free hot paths.
//!
//! Discrete-event network simulators churn through millions of short-lived
//! packet objects; allocating and freeing each one dominates the per-event
//! cost once the calendar itself is cheap (ns-3 solves this the same way
//! with its pooled `Packet` buffers). [`Pool`] keeps returned boxes on a
//! free list and hands them back overwritten-in-place, so a steady-state
//! simulation performs zero heap allocations per packet.

/// A bounded recycling pool of `Box<T>`.
///
/// [`Pool::get`] pops a recycled box (overwriting its contents) or
/// allocates when the free list is empty; [`Pool::put`] returns a box to
/// the free list, dropping it instead once `capacity` boxes are already
/// retained — so a burst cannot pin memory forever.
#[derive(Clone, Debug)]
pub struct Pool<T> {
    free: Vec<Box<T>>,
    capacity: usize,
}

impl<T> Pool<T> {
    /// Creates a pool retaining at most `capacity` free boxes.
    ///
    /// The free list itself is allocated to full capacity up front:
    /// [`Pool::put`] must never grow it, or returning a box would itself
    /// allocate on the hot path the pool exists to keep allocation-free.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        Pool { free: Vec::with_capacity(capacity), capacity }
    }

    /// Takes a box from the pool, initialized to `init()`.
    ///
    /// Recycles a free box (a plain in-place overwrite) when one is
    /// available and heap-allocates otherwise, so warm steady state never
    /// touches the allocator.
    pub fn get(&mut self, init: impl FnOnce() -> T) -> Box<T> {
        match self.free.pop() {
            Some(mut b) => {
                *b = init();
                b
            }
            None => Box::new(init()),
        }
    }

    /// Returns a box to the free list (or drops it if the pool is full).
    pub fn put(&mut self, b: Box<T>) {
        if self.free.len() < self.capacity {
            self.free.push(b);
        }
    }

    /// Fills the free list up to `n` boxes (capped at the pool capacity)
    /// with freshly allocated placeholders.
    ///
    /// Partitioned runs pre-warm each partition's pool at construction:
    /// unlike a serial run's single shared pool, a partition can only
    /// recycle boxes its own events freed, so its circulating population
    /// converges slowly — pre-warming moves that convergence out of the
    /// measured (and allocation-asserted) steady state.
    pub fn prewarm(&mut self, n: usize, mut init: impl FnMut() -> T) {
        let target = n.min(self.capacity);
        while self.free.len() < target {
            self.free.push(Box::new(init()));
        }
    }

    /// Moves up to `n` free boxes into `out` (newest first).
    ///
    /// This exists for pool rebalancing across cooperating simulations
    /// (partitioned runs migrate boxed frames between pools); it never
    /// allocates — `out` must carry its own capacity.
    // The boxes themselves are the recycled resource — unboxing into a
    // `Vec<T>` would allocate on re-boxing, which is the one thing a
    // pool transfer must never do.
    #[allow(clippy::vec_box)]
    pub fn lend(&mut self, n: usize, out: &mut Vec<Box<T>>) {
        let take = n.min(self.free.len());
        out.extend(self.free.drain(self.free.len() - take..));
    }

    /// Number of boxes currently retained on the free list.
    #[must_use]
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Maximum number of free boxes retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Asserts at compile time that a type fits a size ceiling.
///
/// Hot-path types (events, queued frames) are memcpy'd by the calendar's
/// heap sifts, so their size is a performance contract: this macro turns an
/// accidental regression (e.g. un-boxing a large variant) into a compile
/// error instead of a silent slowdown.
#[macro_export]
macro_rules! const_assert_size {
    ($ty:ty, $max:expr) => {
        const _: () = assert!(
            std::mem::size_of::<$ty>() <= $max,
            concat!(
                "size_of::<",
                stringify!($ty),
                ">() exceeds the ",
                stringify!($max),
                "-byte hot-path ceiling; box the large variant"
            )
        );
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_boxes() {
        let mut p: Pool<u64> = Pool::bounded(4);
        let a = p.get(|| 1);
        assert_eq!(*a, 1);
        p.put(a);
        assert_eq!(p.free_len(), 1);
        let b = p.get(|| 2);
        assert_eq!(*b, 2, "recycled box must be re-initialized");
        assert_eq!(p.free_len(), 0);
        p.put(b);
    }

    #[test]
    fn pool_is_bounded() {
        let mut p: Pool<u64> = Pool::bounded(2);
        let boxes: Vec<_> = (0..5).map(|i| p.get(move || i)).collect();
        for b in boxes {
            p.put(b);
        }
        assert_eq!(p.free_len(), 2, "overflow boxes are dropped, not retained");
        assert_eq!(p.capacity(), 2);
    }

    const_assert_size!(u64, 8);
}
