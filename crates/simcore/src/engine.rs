//! The simulation run loop: a [`Model`] consumes events from the calendar
//! and schedules new ones through a [`Scheduler`].

use crate::queue::EventQueue;
use crate::time::{Delta, Time};

/// Handle a model uses to schedule future events while processing the
/// current one.
///
/// Borrowing the calendar through this handle (rather than giving the model
/// the whole [`Simulation`]) keeps the borrow checker happy while the model
/// mutates its own state.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    now: Time,
    queue: &'a mut EventQueue<E>,
    /// Events the model pulled out of the calendar itself via
    /// [`Scheduler::take_next_if`]; folded into the run loop's processed
    /// count so `events_processed` still counts every handled event.
    fused: u64,
}

impl<E> Scheduler<'_, E> {
    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a causality bug.
    #[inline]
    pub fn at(&mut self, at: Time, event: E) {
        assert!(at >= self.now, "cannot schedule into the past ({at:?} < {:?})", self.now);
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire `after` from now.
    #[inline]
    pub fn after(&mut self, after: Delta, event: E) {
        self.queue.push(self.now + after, event);
    }

    /// Schedules `event` to fire at the current instant, after all events
    /// already queued for this instant.
    #[inline]
    pub fn immediately(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// Takes the calendar's next event if it fires at exactly the current
    /// instant and satisfies `pred` — the fused-dispatch primitive.
    ///
    /// The event returned is precisely the one the run loop would have
    /// popped next (full `(time, seq)` order), so handling it inline is
    /// observationally identical to returning to the loop; it merely
    /// skips one dispatch round-trip. Fused events still count toward
    /// [`Simulation::events_processed`].
    #[inline]
    pub fn take_next_if(&mut self, pred: impl FnOnce(&E) -> bool) -> Option<E> {
        let taken = self.queue.pop_current_if(self.now, pred);
        if taken.is_some() {
            self.fused += 1;
        }
        taken
    }
}

/// A simulation model: owns all component state and reacts to events.
pub trait Model {
    /// The event alphabet of the model.
    type Event;

    /// Processes one event. `sched` can be used to schedule follow-ups.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Drives a [`Model`] through simulated time.
///
/// # Example
///
/// ```
/// use dsh_simcore::{Delta, Model, Scheduler, Simulation, Time};
///
/// /// Counts down from n, one tick per microsecond.
/// struct Countdown { remaining: u32 }
/// impl Model for Countdown {
///     type Event = ();
///     fn handle(&mut self, _: (), sched: &mut Scheduler<'_, ()>) {
///         if self.remaining > 0 {
///             self.remaining -= 1;
///             sched.after(Delta::from_us(1), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Countdown { remaining: 3 });
/// sim.schedule(Time::ZERO, ());
/// sim.run();
/// assert_eq!(sim.now(), Time::from_us(3));
/// assert_eq!(sim.model().remaining, 0);
/// ```
#[derive(Debug)]
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: Time,
    processed: u64,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation around `model` with an empty calendar, at time
    /// zero.
    pub fn new(model: M) -> Self {
        Simulation { model, queue: EventQueue::new(), now: Time::ZERO, processed: 0 }
    }

    /// Schedules an initial event (before or between runs).
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulation time.
    pub fn schedule(&mut self, at: Time, event: M::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Runs until the calendar is empty. Returns the number of events
    /// processed during this call.
    pub fn run(&mut self) -> u64 {
        self.run_until(Time::MAX)
    }

    /// Runs until the calendar is empty or the next event is strictly after
    /// `deadline`; the clock then rests at the last processed event (never
    /// beyond `deadline`). Returns the number of events processed during
    /// this call.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let mut n = 0;
        while let Some((t, event)) = self.queue.pop_before(deadline) {
            debug_assert!(t >= self.now, "event calendar went backwards");
            self.now = t;
            let mut sched = Scheduler { now: t, queue: &mut self.queue, fused: 0 };
            self.model.handle(event, &mut sched);
            n += 1 + sched.fused;
        }
        self.processed += n;
        n
    }

    /// Runs until the calendar is empty or the next event is at or after
    /// `bound` (a half-open window `[now, bound)` — the conservative
    /// parallel-DES lookahead primitive). Returns the number of events
    /// processed during this call.
    pub fn run_before(&mut self, bound: Time) -> u64 {
        let mut n = 0;
        while let Some((t, event)) = self.queue.pop_strictly_before(bound) {
            debug_assert!(t >= self.now, "event calendar went backwards");
            self.now = t;
            let mut sched = Scheduler { now: t, queue: &mut self.queue, fused: 0 };
            self.model.handle(event, &mut sched);
            n += 1 + sched.fused;
        }
        self.processed += n;
        n
    }

    /// Runs `f` with the model and a scheduler positioned at `at`,
    /// advancing the clock there — the injection point for events that
    /// live outside this calendar (a parallel driver's global flow-start,
    /// fault, and sample instants).
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulation time.
    pub fn with_model_at<R>(
        &mut self,
        at: Time,
        f: impl FnOnce(&mut M, &mut Scheduler<'_, M::Event>) -> R,
    ) -> R {
        assert!(at >= self.now, "cannot rewind the clock ({at:?} < {:?})", self.now);
        self.now = at;
        let mut sched = Scheduler { now: at, queue: &mut self.queue, fused: 0 };
        let r = f(&mut self.model, &mut sched);
        self.processed += sched.fused;
        r
    }

    /// Like [`Simulation::run_until`], but classifies every dispatched
    /// event through [`EventClass`] and accumulates per-class counts
    /// (and, with the `profile` feature, per-class wall time) into
    /// `profile`.
    pub fn run_until_profiled(
        &mut self,
        deadline: Time,
        profile: &mut crate::profile::EngineProfile,
    ) -> u64
    where
        M::Event: crate::profile::EventClass,
    {
        use crate::profile::EventClass as _;
        let mut n = 0;
        while let Some((t, event)) = self.queue.pop_before(deadline) {
            debug_assert!(t >= self.now, "event calendar went backwards");
            self.now = t;
            let class = event.class();
            #[cfg(feature = "profile")]
            let started = std::time::Instant::now();
            let mut sched = Scheduler { now: t, queue: &mut self.queue, fused: 0 };
            self.model.handle(event, &mut sched);
            #[cfg(feature = "profile")]
            let spent = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            #[cfg(not(feature = "profile"))]
            let spent = 0;
            // A fused follow-up is attributed to the class that absorbed
            // it: the profile shows where dispatch time is actually spent.
            profile.record(class, spent);
            n += 1 + sched.fused;
        }
        self.processed += n;
        n
    }

    /// The current simulated time (time of the last processed event).
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events processed since construction.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Borrows the model.
    #[must_use]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrows the model (e.g. to inject configuration between
    /// phases).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation and returns the model (e.g. to extract final
    /// statistics).
    #[must_use]
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records the order and times at which labelled events fire, and chains
    /// follow-ups.
    struct Recorder {
        log: Vec<(Time, u32)>,
        chain: u32,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.log.push((sched.now(), ev));
            if ev == 0 && self.chain > 0 {
                self.chain -= 1;
                sched.after(Delta::from_ns(10), 0);
            }
        }
    }

    #[test]
    fn runs_events_in_order() {
        let mut sim = Simulation::new(Recorder { log: vec![], chain: 0 });
        sim.schedule(Time::from_ns(30), 3);
        sim.schedule(Time::from_ns(10), 1);
        sim.schedule(Time::from_ns(20), 2);
        assert_eq!(sim.run(), 3);
        assert_eq!(
            sim.model().log,
            vec![(Time::from_ns(10), 1), (Time::from_ns(20), 2), (Time::from_ns(30), 3)]
        );
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = Simulation::new(Recorder { log: vec![], chain: 5 });
        sim.schedule(Time::ZERO, 0);
        sim.run();
        assert_eq!(sim.now(), Time::from_ns(50));
        assert_eq!(sim.events_processed(), 6);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(Recorder { log: vec![], chain: 100 });
        sim.schedule(Time::ZERO, 0);
        let n = sim.run_until(Time::from_ns(35));
        assert_eq!(n, 4); // events at 0, 10, 20, 30
        assert_eq!(sim.now(), Time::from_ns(30));
        assert_eq!(sim.pending(), 1);
        // Resuming picks up where we stopped: 1 seed event + 100 chained.
        sim.run();
        assert_eq!(sim.events_processed(), 101);
    }

    #[test]
    fn immediately_runs_after_current_instant_events() {
        struct Imm {
            log: Vec<u32>,
        }
        impl Model for Imm {
            type Event = u32;
            fn handle(&mut self, ev: u32, sched: &mut Scheduler<'_, u32>) {
                self.log.push(ev);
                if ev == 1 {
                    sched.immediately(99);
                }
            }
        }
        let mut sim = Simulation::new(Imm { log: vec![] });
        sim.schedule(Time::ZERO, 1);
        sim.schedule(Time::ZERO, 2);
        sim.run();
        // 99 was scheduled while handling 1, but 2 was already queued for
        // t=0 and must run first (FIFO among simultaneous events).
        assert_eq!(sim.model().log, vec![1, 2, 99]);
    }

    #[test]
    fn run_before_is_exclusive_and_resumable() {
        let mut sim = Simulation::new(Recorder { log: vec![], chain: 100 });
        sim.schedule(Time::ZERO, 0);
        let n = sim.run_before(Time::from_ns(30));
        assert_eq!(n, 3); // events at 0, 10, 20 — 30 stays pending
        assert_eq!(sim.now(), Time::from_ns(20));
        assert_eq!(sim.pending(), 1);
        sim.run_before(Time::from_ns(31));
        assert_eq!(sim.now(), Time::from_ns(30));
    }

    #[test]
    fn take_next_if_fuses_only_the_adjacent_same_instant_event() {
        struct Fuser {
            log: Vec<u32>,
        }
        impl Model for Fuser {
            type Event = u32;
            fn handle(&mut self, ev: u32, sched: &mut Scheduler<'_, u32>) {
                self.log.push(ev);
                // Fuse an even follow-up at the same instant, if adjacent.
                while let Some(next) = sched.take_next_if(|&e| e % 2 == 0) {
                    self.log.push(next);
                }
            }
        }
        let mut sim = Simulation::new(Fuser { log: vec![] });
        sim.schedule(Time::from_ns(5), 1);
        sim.schedule(Time::from_ns(5), 2);
        sim.schedule(Time::from_ns(5), 3);
        sim.schedule(Time::from_ns(5), 4);
        sim.schedule(Time::from_ns(9), 6);
        sim.run();
        // 1 fuses 2, stops at odd 3; 3 fuses 4; 6 is at a later instant
        // and dispatches on its own.
        assert_eq!(sim.model().log, vec![1, 2, 3, 4, 6]);
        assert_eq!(sim.events_processed(), 5, "fused events still count");
    }

    #[test]
    fn with_model_at_injects_at_a_future_instant() {
        let mut sim = Simulation::new(Recorder { log: vec![], chain: 0 });
        sim.schedule(Time::from_ns(10), 1);
        sim.run();
        sim.with_model_at(Time::from_ns(40), |m, sched| {
            m.log.push((sched.now(), 99));
            sched.after(Delta::from_ns(5), 7);
        });
        assert_eq!(sim.now(), Time::from_ns(40));
        sim.run();
        assert_eq!(
            sim.model().log,
            vec![(Time::from_ns(10), 1), (Time::from_ns(40), 99), (Time::from_ns(45), 7)]
        );
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(Recorder { log: vec![], chain: 0 });
        sim.schedule(Time::from_ns(10), 1);
        sim.run();
        sim.schedule(Time::from_ns(5), 2);
    }
}
