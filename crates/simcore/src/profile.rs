//! Engine profiling: per-event-type dispatch counts and wall time.
//!
//! [`Simulation::run_until_profiled`](crate::Simulation::run_until_profiled)
//! classifies every dispatched event through the model's [`EventClass`]
//! impl and accumulates an [`EngineProfile`]. Event **counts** are always
//! collected (one array index per event); per-event **wall time** is only
//! stamped when the `profile` cargo feature is enabled, because two
//! `Instant::now` calls per event are measurable at tens of millions of
//! events per second. The run-loop used everywhere else is untouched.

use crate::json::Json;

/// Classifies a model's events into a small dense index space so the
/// profiler can use plain arrays instead of hash maps.
pub trait EventClass {
    /// One stable name per class, indexed by [`EventClass::class`].
    const NAMES: &'static [&'static str];

    /// The class index of this event; must be `< NAMES.len()`.
    fn class(&self) -> usize;
}

/// Per-event-type dispatch counts and (feature-gated) wall time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineProfile {
    names: &'static [&'static str],
    counts: Vec<u64>,
    nanos: Vec<u64>,
}

impl EngineProfile {
    /// An empty profile for a model whose events implement [`EventClass`].
    #[must_use]
    pub fn new<E: EventClass>() -> EngineProfile {
        EngineProfile {
            names: E::NAMES,
            counts: vec![0; E::NAMES.len()],
            nanos: vec![0; E::NAMES.len()],
        }
    }

    /// Whether per-event wall time is being stamped (the `profile`
    /// feature) or only counts are collected.
    #[must_use]
    pub fn timing_enabled() -> bool {
        cfg!(feature = "profile")
    }

    /// Records one dispatched event of `class` taking `nanos` ns.
    #[inline]
    pub fn record(&mut self, class: usize, nanos: u64) {
        self.counts[class] += 1;
        self.nanos[class] += nanos;
    }

    /// Total events dispatched.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total stamped wall time in nanoseconds (0 unless the `profile`
    /// feature is on).
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// `(name, count, nanos)` rows for classes that were dispatched at
    /// least once, in class order.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.names
            .iter()
            .zip(self.counts.iter().zip(self.nanos.iter()))
            .filter(|(_, (&c, _))| c > 0)
            .map(|(&name, (&c, &ns))| (name, c, ns))
    }

    /// The profile as a JSON document: total counts plus one row per
    /// dispatched event class.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows()
            .map(|(name, count, nanos)| {
                Json::object().with("event", name).with("count", count).with("nanos", nanos)
            })
            .collect();
        Json::object()
            .with("events", self.total_events())
            .with("nanos", self.total_nanos())
            .with("timed", Self::timing_enabled())
            .with("per_event", rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    enum Toy {
        A,
        B,
    }

    impl EventClass for Toy {
        const NAMES: &'static [&'static str] = &["a", "b"];
        fn class(&self) -> usize {
            match self {
                Toy::A => 0,
                Toy::B => 1,
            }
        }
    }

    #[test]
    fn counts_and_rows_track_recorded_events() {
        let mut p = EngineProfile::new::<Toy>();
        p.record(Toy::A.class(), 10);
        p.record(Toy::A.class(), 5);
        p.record(Toy::B.class(), 1);
        assert_eq!(p.total_events(), 3);
        assert_eq!(p.total_nanos(), 16);
        let rows: Vec<_> = p.rows().collect();
        assert_eq!(rows, vec![("a", 2, 15), ("b", 1, 1)]);
    }

    #[test]
    fn json_reports_all_dispatched_classes() {
        let mut p = EngineProfile::new::<Toy>();
        p.record(0, 0);
        let doc = p.to_json();
        assert_eq!(doc.get("events").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("per_event").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
    }
}
