//! Lockstep coordination for conservative parallel DES workers.
//!
//! A partitioned simulation advances in lookahead-sized windows: every
//! worker runs its partitions' calendars up to a shared stop time, then
//! all of them rendezvous while a single coordinator merges the
//! cross-partition inboxes and executes global events, and the next
//! window opens. [`Lockstep`] is that rendezvous: a two-phase barrier
//! over `workers + 1` threads carrying the window command (run up to a
//! stop time, or exit) from the coordinator to the workers.
//!
//! The protocol is strict and symmetric, so neither side can race ahead:
//!
//! ```text
//! coordinator                       worker (each of N)
//! open_window(stop)  ── barrier ──  next_window() -> Some(stop)
//!     (merging idle)                run partitions before `stop`
//! close_window()     ── barrier ──  window_done()
//! merge inboxes, run globals        (waiting at next_window)
//! ...
//! shut_down()        ── barrier ──  next_window() -> None, exit
//! ```
//!
//! The command cell is only written by the coordinator strictly before
//! the opening barrier and only read by workers strictly after it, so
//! the mutex is never contended; the barrier provides the ordering.

use crate::time::Time;
use std::sync::{Barrier, Mutex};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Command {
    Run(Time),
    Exit,
}

/// A two-phase window barrier between one coordinator and `workers`
/// worker threads (see the module docs for the protocol).
#[derive(Debug)]
pub struct Lockstep {
    barrier: Barrier,
    cmd: Mutex<Command>,
}

impl Lockstep {
    /// Creates a lockstep for `workers` worker threads plus the
    /// coordinator.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero — a windowed run with no workers
    /// would deadlock the coordinator at its first barrier.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "lockstep needs at least one worker");
        Lockstep { barrier: Barrier::new(workers + 1), cmd: Mutex::new(Command::Exit) }
    }

    /// Coordinator: releases every worker into a run phase bounded by
    /// `stop` (exclusive). Returns once all workers are running.
    pub fn open_window(&self, stop: Time) {
        *self.cmd.lock().expect("lockstep command poisoned") = Command::Run(stop);
        self.barrier.wait();
    }

    /// Coordinator: blocks until every worker has called
    /// [`Lockstep::window_done`]. After this returns the coordinator has
    /// exclusive use of the partitions until the next
    /// [`Lockstep::open_window`].
    pub fn close_window(&self) {
        self.barrier.wait();
    }

    /// Coordinator: releases every worker to exit its loop.
    pub fn shut_down(&self) {
        *self.cmd.lock().expect("lockstep command poisoned") = Command::Exit;
        self.barrier.wait();
    }

    /// Worker: waits for the next phase. `Some(stop)` opens a run window
    /// bounded by `stop` (exclusive); `None` means exit.
    pub fn next_window(&self) -> Option<Time> {
        self.barrier.wait();
        match *self.cmd.lock().expect("lockstep command poisoned") {
            Command::Run(stop) => Some(stop),
            Command::Exit => None,
        }
    }

    /// Worker: marks this worker's run phase complete.
    pub fn window_done(&self) {
        self.barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn windows_run_in_lockstep() {
        let workers = 3;
        let ls = Lockstep::new(workers);
        let ran = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(stop) = ls.next_window() {
                        ran.fetch_add(stop.as_ps(), Ordering::Relaxed);
                        ls.window_done();
                    }
                });
            }
            for w in 1..=5u64 {
                ls.open_window(Time::from_ns(w));
                ls.close_window();
                // All workers contributed to exactly this window before
                // the coordinator proceeds.
                assert_eq!(
                    ran.swap(0, Ordering::Relaxed),
                    workers as u64 * Time::from_ns(w).as_ps()
                );
            }
            ls.shut_down();
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Lockstep::new(0);
    }
}
