//! Analysis toolkit for the DSH reproduction: the paper's burst-absorption
//! theory (§IV-C, Theorems 1 and 2), a fluid-model cross-validator,
//! statistics (CDFs, percentiles) and FCT aggregation.
//!
//! # Example
//!
//! ```
//! use dsh_analysis::theory::{BurstScenario, dsh_burst_tolerance, sih_burst_tolerance};
//!
//! // The paper's remark: DSH's burst absorption is independent of the
//! // number of queues per port, while SIH's shrinks as N_q grows.
//! let sc = BurstScenario {
//!     total_buffer: 16.0 * 1024.0 * 1024.0,
//!     eta: 56_840.0,
//!     alpha: 1.0 / 16.0,
//!     num_ports: 32,
//!     queues_per_port: 7,
//!     congested: 2,
//!     bursting: 16,
//!     offered_load: 2.0,
//! };
//! assert!(dsh_burst_tolerance(&sc) > sih_burst_tolerance(&sc));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fct;
pub mod stats;
pub mod theory;
