//! Small, exact statistics helpers used by the experiment harness.

/// Arithmetic mean; `None` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Exact p-th percentile (nearest-rank, `p` in `[0, 100]`); `None` for an
/// empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    Some(v[rank.clamp(1, v.len()) - 1])
}

/// An empirical CDF.
#[derive(Clone, Debug, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    #[must_use]
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        Cdf { sorted }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    #[must_use]
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Value at quantile `q` in `[0, 1]`; `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        percentile(&self.sorted, q * 100.0)
    }

    /// `(value, cumulative fraction)` pairs for plotting.
    #[must_use]
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted.iter().enumerate().map(|(i, &v)| (v, (i + 1) as f64 / n as f64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(3.0));
        assert_eq!(percentile(&v, 100.0), Some(5.0));
        assert_eq!(percentile(&v, 99.0), Some(5.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn cdf_fraction_and_quantile() {
        let c = Cdf::new([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.fraction_at(9.0), 0.0);
        assert_eq!(c.fraction_at(20.0), 0.5);
        assert_eq!(c.fraction_at(100.0), 1.0);
        assert_eq!(c.quantile(0.5), Some(20.0));
        let pts = c.points();
        assert_eq!(pts.first(), Some(&(10.0, 0.25)));
        assert_eq!(pts.last(), Some(&(40.0, 1.0)));
    }

    proptest! {
        /// CDF is monotone and bounded in [0, 1].
        #[test]
        fn prop_cdf_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let c = Cdf::new(xs.clone());
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut last = 0.0;
            for &x in &xs {
                let f = c.fraction_at(x);
                prop_assert!((0.0..=1.0).contains(&f));
                prop_assert!(f >= last);
                last = f;
            }
            prop_assert_eq!(c.fraction_at(f64::INFINITY), 1.0);
        }

        /// percentile never panics for valid p and returns an element.
        #[test]
        fn prop_percentile_membership(xs in proptest::collection::vec(-1e6f64..1e6, 1..50), p in 0.0f64..100.0) {
            let v = percentile(&xs, p).unwrap();
            prop_assert!(xs.contains(&v));
        }
    }
}
