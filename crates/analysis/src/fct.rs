//! Flow-completion-time aggregation for the Fig. 5/14/15 experiments.

use crate::stats::{mean, percentile};
use dsh_simcore::Delta;

/// Summary statistics over a set of FCTs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FctSummary {
    /// Number of completed flows.
    pub count: usize,
    /// Average FCT in seconds.
    pub avg_secs: f64,
    /// Median FCT in seconds.
    pub p50_secs: f64,
    /// 95th percentile FCT in seconds.
    pub p95_secs: f64,
    /// 99th percentile FCT in seconds.
    pub p99_secs: f64,
}

impl FctSummary {
    /// Summarizes a set of FCTs. Returns `None` when empty.
    #[must_use]
    pub fn from_fcts(fcts: &[Delta]) -> Option<FctSummary> {
        if fcts.is_empty() {
            return None;
        }
        let secs: Vec<f64> = fcts.iter().map(|d| d.as_secs_f64()).collect();
        Some(FctSummary {
            count: secs.len(),
            avg_secs: mean(&secs).expect("non-empty"),
            p50_secs: percentile(&secs, 50.0).expect("non-empty"),
            p95_secs: percentile(&secs, 95.0).expect("non-empty"),
            p99_secs: percentile(&secs, 99.0).expect("non-empty"),
        })
    }

    /// This summary's average normalized to a baseline (the paper plots
    /// everything relative to SIH).
    ///
    /// # Panics
    ///
    /// Panics if the baseline average is zero.
    #[must_use]
    pub fn normalized_avg(&self, baseline: &FctSummary) -> f64 {
        assert!(baseline.avg_secs > 0.0, "baseline average must be positive");
        self.avg_secs / baseline.avg_secs
    }
}

/// FCT *slowdown*: measured FCT divided by the ideal (empty-network)
/// transfer time of the same flow — the scale-free metric many DCN papers
/// report alongside raw FCT.
///
/// # Example
///
/// ```
/// use dsh_analysis::fct::slowdown;
/// use dsh_simcore::{Bandwidth, Delta};
///
/// // A 150 KB flow on a 100 Gb/s path with 10 us base RTT takes at least
/// // 22 us; finishing in 44 us is a 2x slowdown.
/// let s = slowdown(
///     Delta::from_us(44),
///     150_000,
///     Bandwidth::from_gbps(100),
///     Delta::from_us(10),
/// );
/// assert!((s - 2.0).abs() < 0.01);
/// ```
///
/// # Panics
///
/// Panics if the flow size is zero.
#[must_use]
pub fn slowdown(
    fct: Delta,
    size_bytes: u64,
    bottleneck: dsh_simcore::Bandwidth,
    base_rtt: Delta,
) -> f64 {
    assert!(size_bytes > 0, "flow size must be positive");
    let ideal = bottleneck.tx_delay(size_bytes) + base_rtt;
    fct.as_secs_f64() / ideal.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let fcts: Vec<Delta> = (1..=100).map(Delta::from_us).collect();
        let s = FctSummary::from_fcts(&fcts).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.avg_secs - 50.5e-6).abs() < 1e-9);
        assert!((s.p50_secs - 50e-6).abs() < 1e-9);
        assert!((s.p99_secs - 99e-6).abs() < 1e-9);
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(FctSummary::from_fcts(&[]), None);
    }

    #[test]
    fn slowdown_is_one_for_ideal_transfers() {
        use dsh_simcore::Bandwidth;
        let bw = Bandwidth::from_gbps(100);
        let rtt = Delta::from_us(10);
        let ideal = bw.tx_delay(1_000_000) + rtt;
        let s = slowdown(ideal, 1_000_000, bw, rtt);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalization() {
        let a = FctSummary::from_fcts(&[Delta::from_us(50)]).unwrap();
        let b = FctSummary::from_fcts(&[Delta::from_us(100)]).unwrap();
        assert!((a.normalized_avg(&b) - 0.5).abs() < 1e-12);
        assert!((b.normalized_avg(&b) - 1.0).abs() < 1e-12);
    }
}
