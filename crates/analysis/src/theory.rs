//! Closed-form burst-absorption bounds (paper §IV-C) and a fluid-model
//! integrator that cross-validates them.
//!
//! Scenario (from Choudhury & Hahne, adopted by the paper): `N` ingress
//! queues have been congested since `t₀ < 0`; at `t = 0`, `M` further
//! queues start receiving bursty traffic at normalized offered load
//! `R > 1`. The theorems give the longest burst duration `d` that triggers
//! **no** PFC pause on the bursting queues.

/// Scenario parameters shared by both theorems. All byte quantities are
/// `f64` for closed-form math.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstScenario {
    /// Total lossless-pool buffer `B` (bytes); private buffer is assumed 0
    /// per the paper's analysis assumptions.
    pub total_buffer: f64,
    /// Per-queue worst-case headroom `η` (bytes).
    pub eta: f64,
    /// DT parameter `α`.
    pub alpha: f64,
    /// Number of ports `N_p`.
    pub num_ports: usize,
    /// Lossless queues per port `N_q`.
    pub queues_per_port: usize,
    /// `N`: queues already congested at `t = 0`.
    pub congested: usize,
    /// `M`: queues that start bursting at `t = 0`.
    pub bursting: usize,
    /// `R`: normalized offered load of each active queue (> 1).
    pub offered_load: f64,
}

impl BurstScenario {
    /// Shared-segment size under DSH: `B_s = B − N_p·η` (Eq. 4 reservation).
    #[must_use]
    pub fn dsh_shared(&self) -> f64 {
        self.total_buffer - self.num_ports as f64 * self.eta
    }

    /// Shared-segment size under SIH: `B_s = B − N_p·N_q·η` (Eq. 3
    /// reservation).
    #[must_use]
    pub fn sih_shared(&self) -> f64 {
        self.total_buffer - (self.num_ports * self.queues_per_port) as f64 * self.eta
    }

    /// The regime boundary `R* = (1 − αN)/(αM) + 1` separating the two
    /// cases of Theorems 1 and 2.
    #[must_use]
    pub fn regime_boundary(&self) -> f64 {
        let a = self.alpha;
        (1.0 - a * self.congested as f64) / (a * self.bursting as f64) + 1.0
    }
}

/// Max pause-free burst duration in *normalized byte-times* (bytes of
/// burst per unit drain rate) for a scheme with shared size `bs` and pause
/// threshold offset `eta_off` below `T(t)` (`η` for DSH, `0` for SIH).
fn burst_tolerance(sc: &BurstScenario, bs: f64, eta_off: f64) -> f64 {
    let a = sc.alpha;
    let n = sc.congested as f64;
    let m = sc.bursting as f64;
    let r = sc.offered_load;
    assert!(r > 1.0, "offered load must exceed 1 (otherwise no burst builds)");
    let numer = a * bs - eta_off;
    if numer <= 0.0 {
        return 0.0;
    }
    if r <= sc.regime_boundary() {
        // Case 1 (Eq. 16): the congested queues track the falling
        // threshold.
        numer / ((1.0 + a * (n + m)) * (r - 1.0))
    } else {
        // Case 2 (Eq. 19): the congested queues drain at their maximum
        // rate, slower than the threshold falls.
        numer / ((1.0 + a * n) * ((1.0 + a * m) * (r - 1.0) - a * n))
    }
}

/// Theorem 1: DSH's maximum pause-free burst duration (normalized units).
#[must_use]
pub fn dsh_burst_tolerance(sc: &BurstScenario) -> f64 {
    burst_tolerance(sc, sc.dsh_shared(), sc.eta)
}

/// Theorem 2: SIH's maximum pause-free burst duration (normalized units).
#[must_use]
pub fn sih_burst_tolerance(sc: &BurstScenario) -> f64 {
    burst_tolerance(sc, sc.sih_shared(), 0.0)
}

/// Result of a fluid-model run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FluidOutcome {
    /// Time at which the bursting queues first hit the pause threshold
    /// (normalized units), or `None` if they never did within the horizon.
    pub first_pause: Option<f64>,
}

/// Integrates the §IV-C fluid model numerically and reports when the
/// bursting queues first cross `X_off` — an independent check of the
/// closed forms.
///
/// `eta_off` is `η` for DSH, `0` for SIH; `bs` the shared size; `horizon`
/// and `dt` control integration.
#[must_use]
pub fn fluid_first_pause(
    sc: &BurstScenario,
    bs: f64,
    eta_off: f64,
    horizon: f64,
    dt: f64,
) -> FluidOutcome {
    let a = sc.alpha;
    let n = sc.congested;
    let m = sc.bursting;
    let r = sc.offered_load;

    // Initial state: congested queues sit exactly at X_off(0) (Eq. 10).
    let q0 = (a * bs - eta_off) / (1.0 + a * n as f64);
    let mut cong = vec![q0.max(0.0); n];
    let mut burst = vec![0.0f64; m];

    let mut t = 0.0;
    while t < horizon {
        let total: f64 = cong.iter().sum::<f64>() + burst.iter().sum::<f64>();
        let thresh = (a * (bs - total)).max(0.0);
        let xoff = (thresh - eta_off).max(0.0);
        if burst.iter().any(|&q| q >= xoff) {
            return FluidOutcome { first_pause: Some(t) };
        }
        // Congested queues: input paused (they sit above threshold), drain
        // at up to rate 1, but never below the (falling) X_off tracking of
        // the fluid model; bursting queues: net growth R - 1.
        for q in &mut cong {
            let drain = if *q > xoff { (*q - xoff).min(dt) } else { 0.0 };
            *q -= drain;
        }
        for q in &mut burst {
            *q += (r - 1.0) * dt;
        }
        t += dt;
    }
    FluidOutcome { first_pause: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_scenario() -> BurstScenario {
        BurstScenario {
            total_buffer: 16.0 * 1024.0 * 1024.0,
            eta: 56_840.0,
            alpha: 1.0 / 16.0,
            num_ports: 32,
            queues_per_port: 7,
            congested: 2,
            bursting: 16,
            offered_load: 2.0,
        }
    }

    #[test]
    fn dsh_beats_sih_substantially_in_paper_setting() {
        let sc = paper_scenario();
        let d_dsh = dsh_burst_tolerance(&sc);
        let d_sih = sih_burst_tolerance(&sc);
        let ratio = d_dsh / d_sih;
        // The closed forms give ~3.5x for this (N=2, M=16) scenario; the
        // >4x of Fig. 11 is the packet-level measurement, which also
        // charges SIH the private-buffer and quantization effects.
        assert!(ratio > 3.0, "ratio {ratio}");
        // The shared-pool ratio itself is ~3.7x here (4.25x once the
        // private buffer, which the theory section sets to zero, is
        // subtracted as in the real chip configuration).
        assert!(sc.dsh_shared() / sc.sih_shared() > 3.5);
    }

    #[test]
    fn dsh_is_independent_of_queue_count_sih_is_not() {
        let mut sc = paper_scenario();
        let d8 = dsh_burst_tolerance(&sc);
        let s8 = sih_burst_tolerance(&sc);
        sc.queues_per_port = 2;
        let d2 = dsh_burst_tolerance(&sc);
        let s2 = sih_burst_tolerance(&sc);
        assert!((d8 - d2).abs() < 1e-9, "DSH must not depend on N_q");
        assert!(s2 > s8, "SIH must improve with fewer queues");
    }

    #[test]
    fn tolerance_increases_with_buffer() {
        let sc = paper_scenario();
        let big = BurstScenario { total_buffer: 32.0 * 1024.0 * 1024.0, ..sc };
        assert!(dsh_burst_tolerance(&big) > dsh_burst_tolerance(&sc));
        assert!(sih_burst_tolerance(&big) > sih_burst_tolerance(&sc));
    }

    #[test]
    fn tolerance_decreases_with_load() {
        let sc = paper_scenario();
        let hot = BurstScenario { offered_load: 8.0, ..sc };
        assert!(dsh_burst_tolerance(&hot) < dsh_burst_tolerance(&sc));
    }

    #[test]
    fn both_regimes_are_exercised() {
        let sc = paper_scenario();
        let boundary = sc.regime_boundary();
        let low = BurstScenario { offered_load: (1.0 + boundary) / 2.0, ..sc };
        let high = BurstScenario { offered_load: boundary + 5.0, ..sc };
        assert!(low.offered_load < boundary && high.offered_load > boundary);
        assert!(dsh_burst_tolerance(&low).is_finite());
        assert!(dsh_burst_tolerance(&high).is_finite());
        // Near-continuity at the boundary: the case-2 derivation assumes
        // the congested queues drain at full rate from t = 0, so the two
        // expressions differ only by an O(α³) term there.
        let at = BurstScenario { offered_load: boundary, ..sc };
        let c1 = burst_case1(&at);
        let c2 = burst_case2(&at);
        assert!((c1 - c2).abs() / c1 < 0.05, "{c1} vs {c2}");
    }

    fn burst_case1(sc: &BurstScenario) -> f64 {
        let a = sc.alpha;
        (a * sc.dsh_shared() - sc.eta)
            / ((1.0 + a * (sc.congested + sc.bursting) as f64) * (sc.offered_load - 1.0))
    }

    fn burst_case2(sc: &BurstScenario) -> f64 {
        let a = sc.alpha;
        (a * sc.dsh_shared() - sc.eta)
            / ((1.0 + a * sc.congested as f64)
                * ((1.0 + a * sc.bursting as f64) * (sc.offered_load - 1.0)
                    - a * sc.congested as f64))
    }

    #[test]
    fn fluid_model_matches_closed_form_case1() {
        // Boundary for (α=1/16, N=2, M=16) is R* = 1.875; use R = 1.5.
        let sc = BurstScenario { offered_load: 1.5, ..paper_scenario() };
        assert!(sc.offered_load < sc.regime_boundary());
        let closed = dsh_burst_tolerance(&sc);
        let fluid =
            fluid_first_pause(&sc, sc.dsh_shared(), sc.eta, closed * 3.0, closed / 20_000.0);
        let t = fluid.first_pause.expect("must pause eventually");
        assert!((t - closed).abs() / closed < 0.02, "fluid {t} vs closed {closed}");
    }

    #[test]
    fn fluid_model_matches_closed_form_case2() {
        let sc = BurstScenario { offered_load: 8.0, ..paper_scenario() };
        assert!(sc.offered_load > sc.regime_boundary());
        let closed = dsh_burst_tolerance(&sc);
        let fluid =
            fluid_first_pause(&sc, sc.dsh_shared(), sc.eta, closed * 3.0, closed / 20_000.0);
        let t = fluid.first_pause.expect("must pause eventually");
        assert!((t - closed).abs() / closed < 0.02, "fluid {t} vs closed {closed}");
    }

    #[test]
    fn fluid_model_matches_sih_closed_form() {
        let sc = paper_scenario();
        let closed = sih_burst_tolerance(&sc);
        let fluid = fluid_first_pause(&sc, sc.sih_shared(), 0.0, closed * 3.0, closed / 20_000.0);
        let t = fluid.first_pause.expect("must pause eventually");
        assert!((t - closed).abs() / closed < 0.02, "fluid {t} vs closed {closed}");
    }

    #[test]
    fn exhausted_headroom_means_zero_tolerance() {
        // If eta exceeds alpha * B_s, DSH pauses immediately.
        let sc = BurstScenario { eta: 10.0 * 1024.0 * 1024.0, ..paper_scenario() };
        assert_eq!(dsh_burst_tolerance(&sc), 0.0);
    }
}
