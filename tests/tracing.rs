//! Tracing end-to-end regressions: the flight recorder and the Chrome
//! export must be deterministic (byte-identical at any executor width),
//! and a dirty MMU audit must leave an `AuditFail` record in the ring.
//!
//! Determinism matters because the trace is a debugging artifact: a diff
//! between two traces must mean the *simulation* differed, never that
//! the executor interleaved differently.

use dsh_bench::fabric::{self, FctExperiment, Topo};
use dsh_core::{Mmu, MmuConfig, Scheme};
use dsh_simcore::trace::{self, TraceEvent, TraceMask, Tracer};
use dsh_simcore::{ByteSize, Delta, Executor, Json};
use dsh_transport::CcKind;

/// FNV-1a over bytes, so a golden is one `u64` literal.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Four micro FCT cells with distinct seeds — distinct seeds keep every
/// [`trace::TraceKey`] unique, which is what makes the capture's log
/// order (and so the export) width-independent.
fn traced_grid() -> Vec<FctExperiment> {
    (0..4u64)
        .map(|i| {
            let scheme = if i % 2 == 0 { Scheme::Sih } else { Scheme::Dsh };
            let mut e = FctExperiment::small(scheme, CcKind::Dcqcn);
            e.topo = Topo::LeafSpine { leaves: 2, spines: 2, hosts_per_leaf: 4 };
            e.horizon = Delta::from_us(300);
            e.run_until = Delta::from_ms(2);
            e.seed = i + 1;
            e
        })
        .collect()
}

/// Runs the traced micro sweep at `threads` workers and returns the
/// concatenated binary dumps and the Chrome JSON (fixed provenance, so
/// the export itself cannot differ by construction parameters).
fn traced_sweep(threads: usize) -> (Vec<u8>, String) {
    let (_, logs) = trace::capture(TraceMask::ALL, 16_384, || {
        Executor::new(threads).par_map(traced_grid(), |e| fabric::run_fct(&e))
    });
    assert_eq!(logs.len(), 4, "one flight recorder per simulation");
    assert!(logs.iter().all(|l| !l.records.is_empty()), "traced sims must record events");
    let mut binary = Vec::new();
    for log in &logs {
        binary.extend_from_slice(&log.encode());
    }
    let provenance = Json::object().with("fixture", "fig14-micro").with("seed", 1u64);
    let chrome = trace::chrome_trace(&logs, provenance).to_string();
    (binary, chrome)
}

#[test]
fn trace_capture_is_byte_identical_at_1_and_4_threads() {
    let (bin1, chrome1) = traced_sweep(1);
    let (bin4, chrome4) = traced_sweep(4);
    assert_eq!(bin1, bin4, "binary flight-recorder dumps differ by executor width");
    assert_eq!(chrome1, chrome4, "Chrome trace JSON differs by executor width");
    // Golden digests: pin the record stream and the export byte-for-byte
    // across refactors, same contract as the fig14 golden in
    // `determinism.rs`. Rebaseline only with a deliberate
    // behavior-changing fix (this is the initial baseline).
    assert_eq!(fnv1a(&bin1), 17_455_429_490_099_762_077, "binary trace dump drifted");
    assert_eq!(fnv1a(chrome1.as_bytes()), 18_194_199_522_894_427_966, "Chrome trace drifted");
}

#[test]
fn dirty_mmu_audit_records_and_dumps_the_failure() {
    let cfg = MmuConfig::builder()
        .scheme(Scheme::Dsh)
        .total_buffer(ByteSize::mib(2))
        .ports(4)
        .lossless_queues(2)
        .private_per_queue(ByteSize::kib(3))
        .eta(ByteSize::bytes(50_000))
        .alpha(0.5)
        .build();
    let mut mmu = Mmu::new(cfg);
    let tracer = Tracer::new(TraceMask::ALL, 256);
    mmu.set_tracer(tracer.clone(), 7);
    assert!(mmu.audit().is_clean(), "fresh MMU must audit clean");
    mmu.corrupt_port_shared_sum_for_test(0, 500);
    let report = mmu.audit();
    assert!(!report.is_clean());
    // The audit names the broken invariant...
    assert!(report.to_string().contains("port-shared-sum-consistent"), "{report}");
    // ...and leaves an `AuditFail` record in the flight recorder (the
    // dump to stderr happened inside `audit()`), attributed to the node
    // id the tracer was registered under.
    let log = tracer.log(trace::TraceKey::default());
    let fail = log
        .records
        .iter()
        .find(|r| r.event == TraceEvent::AuditFail as u8)
        .expect("dirty audit must record AuditFail");
    assert_eq!(fail.node, 7, "AuditFail must name the failing MMU's node");
    assert_eq!(fail.payload, 1, "payload carries the violation count");
}
