//! Determinism regression for the parallel experiment executor.
//!
//! The executor's contract (DESIGN.md, "Parallel execution & determinism
//! contract") is that a sweep's output is a pure function of its
//! experiment configs: the thread count may only change wall-clock time,
//! never a single byte of the results. These tests pin that down by
//! running the same scaled-down sweeps at 1 and 4 threads and comparing
//! serialized output byte for byte.

use dsh_bench::fabric::{FctExperiment, Topo};
use dsh_bench::fig14;
use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetParams, NetworkBuilder, ParallelSim};
use dsh_simcore::{Bandwidth, Delta, Executor, Time};
use dsh_transport::CcKind;

/// FNV-1a over the rendered output, so a golden is one `u64` literal.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Micro leaf–spine base so the whole grid stays test-sized.
fn micro_base() -> FctExperiment {
    let mut base = FctExperiment::small(Scheme::Sih, CcKind::Dcqcn);
    base.topo = Topo::LeafSpine { leaves: 2, spines: 2, hosts_per_leaf: 4 };
    base.horizon = Delta::from_us(300);
    base.run_until = Delta::from_ms(4);
    base
}

#[test]
fn fig14_sweep_is_byte_identical_at_1_and_4_threads() {
    let loads = [0.3, 0.5, 0.7];
    let base = micro_base();
    let serial = fig14::sweep(CcKind::Dcqcn, &loads, &base, &Executor::new(1));
    let four = fig14::sweep(CcKind::Dcqcn, &loads, &base, &Executor::new(4));
    // FCT summaries are f64-valued; Debug prints the shortest
    // round-trippable form, so equal strings mean bit-equal results.
    let rendered = format!("{serial:#?}");
    assert_eq!(rendered, format!("{four:#?}"));
    // And the run must actually have measured something.
    assert!(serial.iter().all(|p| p.norm_fan().is_some() && p.norm_bg().is_some()));
    // Golden digest: pins the sweep's full output byte-for-byte across
    // refactors. Frame pooling, the inline hop list, and buffer reuse must
    // not move a single event, so this hash is the "before/after pooling"
    // equivalence proof. It may only change with a deliberate
    // behavior-changing fix (last rebaselined when redundant NIC pacing
    // wake-ups were elided while the uplink serializer is busy, which
    // re-orders same-instant calendar ties).
    assert_eq!(fnv1a(&rendered), 10_839_357_829_881_153_996, "fig14 micro sweep output drifted");
}

/// One micro 7:1 incast, returning the run's full telemetry JSON.
fn incast_telemetry(scheme: Scheme) -> String {
    let mut b = NetworkBuilder::new(NetParams::tomahawk(scheme).without_ecn());
    let hosts: Vec<_> = (0..8).map(|_| b.host()).collect();
    let sw = b.switch();
    for &h in &hosts {
        b.link(h, sw, Bandwidth::from_gbps(100), Delta::from_us(2));
    }
    let mut net = b.build();
    for &src in &hosts[..7] {
        net.add_flow(FlowSpec {
            src,
            dst: hosts[7],
            size: 96 * 1024,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
    }
    let mut sim = net.into_sim();
    let end = Time::from_us(500);
    sim.run_until(end);
    sim.into_model().telemetry_report(end).to_json().to_string()
}

#[test]
fn telemetry_json_is_byte_identical_at_1_and_4_threads() {
    let schemes =
        vec![Scheme::Sih, Scheme::Dsh, Scheme::BShare, Scheme::Sih, Scheme::Dsh, Scheme::BShare];
    let run = |threads: usize| Executor::new(threads).par_map(schemes.clone(), incast_telemetry);
    let serial = run(1);
    let four = run(4);
    assert_eq!(serial, four);
    assert!(serial[0].contains("\"switches\"") || !serial[0].is_empty());
    // Golden digests (SIH, DSH, BShare): same contract as the fig14
    // golden — the pooled hot path must reproduce the pre-pooling
    // telemetry JSON byte for byte. The SIH/DSH digests additionally pin
    // the MmuScheme-trait extraction as a pure refactor: the pre-trait
    // values survive it unchanged. (Last rebaselined when per-port pause
    // telemetry gained the per-class breakdown and the POFF-only latency
    // histogram — serialization-only; the event stream is untouched.
    // Provenance deliberately excludes the thread count so reports stay
    // identical at any executor width.)
    let digests: Vec<u64> = serial.iter().map(|s| fnv1a(s)).collect();
    assert_eq!(
        digests,
        vec![
            8_944_586_279_440_163_145,
            844_803_653_957_588_568,
            BSHARE_TELEMETRY_GOLDEN,
            8_944_586_279_440_163_145,
            844_803_653_957_588_568,
            BSHARE_TELEMETRY_GOLDEN,
        ],
        "telemetry JSON drifted"
    );
}

/// BShare's incast telemetry digest, pinned when the scheme landed. In
/// this unpaced incast the drain-rate estimator tightens some pause
/// thresholds, so the event stream legitimately differs from DSH's — but
/// it must still be deterministic and stable across refactors. (Last
/// rebaselined for the per-class pause telemetry breakdown.)
const BSHARE_TELEMETRY_GOLDEN: u64 = 9_214_839_694_620_938_198;

#[test]
fn derived_seeds_match_across_pool_widths() {
    let points: Vec<u32> = (0..16).collect();
    let at = |threads: usize| {
        Executor::new(threads).par_map_seeded(42, points.clone(), |p, seed| (p, seed))
    };
    assert_eq!(at(1), at(4));
    assert_eq!(at(1), at(16));
}

/// A 4-switch chain with two hosts per switch, ECN off, staggered
/// uncontrolled senders crossing every inter-switch link — the documented
/// requirements for serial/partitioned bit-identity (no global-RNG ECN
/// draws; distinct start/finish instants). Runs on the link-partitioned
/// conservative engine at `workers` threads and returns the full
/// telemetry JSON.
fn chain_partitioned_telemetry(scheme: Scheme, workers: usize) -> String {
    let mut b = NetworkBuilder::new(NetParams::tomahawk(scheme).without_ecn());
    let switches: Vec<_> = (0..4).map(|_| b.switch()).collect();
    let hosts: Vec<_> = (0..8).map(|_| b.host()).collect();
    let bw = Bandwidth::from_gbps(100);
    for (i, &h) in hosts.iter().enumerate() {
        b.link(h, switches[i / 2], bw, Delta::from_us(1));
    }
    for w in switches.windows(2) {
        b.link(w[0], w[1], bw, Delta::from_us(2));
    }
    let mut net = b.build();
    for i in 0..4 {
        // Forward and reverse flows between opposite ends of the chain.
        for (j, (src, dst)) in
            [(hosts[i], hosts[7 - i]), (hosts[7 - i], hosts[i])].into_iter().enumerate()
        {
            net.add_flow(FlowSpec {
                src,
                dst,
                size: 150_000 + 30_000 * i as u64,
                class: 0,
                start: Time::from_us((2 * i + j) as u64 * 3),
                cc: CcKind::Uncontrolled,
            });
        }
    }
    let mut par = ParallelSim::new(net, workers).expect("chain must partition");
    let end = Time::from_ms(1);
    par.run_until(end);
    par.into_network().telemetry_report(end).to_json().to_string()
}

/// The serial calendar's telemetry for the same scenario — the
/// single-worker degeneration baseline.
fn chain_serial_telemetry(scheme: Scheme) -> String {
    let mut b = NetworkBuilder::new(NetParams::tomahawk(scheme).without_ecn());
    let switches: Vec<_> = (0..4).map(|_| b.switch()).collect();
    let hosts: Vec<_> = (0..8).map(|_| b.host()).collect();
    let bw = Bandwidth::from_gbps(100);
    for (i, &h) in hosts.iter().enumerate() {
        b.link(h, switches[i / 2], bw, Delta::from_us(1));
    }
    for w in switches.windows(2) {
        b.link(w[0], w[1], bw, Delta::from_us(2));
    }
    let mut net = b.build();
    for i in 0..4 {
        for (j, (src, dst)) in
            [(hosts[i], hosts[7 - i]), (hosts[7 - i], hosts[i])].into_iter().enumerate()
        {
            net.add_flow(FlowSpec {
                src,
                dst,
                size: 150_000 + 30_000 * i as u64,
                class: 0,
                start: Time::from_us((2 * i + j) as u64 * 3),
                cc: CcKind::Uncontrolled,
            });
        }
    }
    let mut sim = net.into_sim();
    let end = Time::from_ms(1);
    sim.run_until(end);
    sim.into_model().telemetry_report(end).to_json().to_string()
}

#[test]
fn partitioned_telemetry_is_byte_identical_at_1_2_4_workers() {
    let mut digests = Vec::new();
    for scheme in [Scheme::Sih, Scheme::Dsh, Scheme::BShare] {
        let one = chain_partitioned_telemetry(scheme, 1);
        assert_eq!(one, chain_partitioned_telemetry(scheme, 2), "{scheme:?} drifted at 2 workers");
        assert_eq!(one, chain_partitioned_telemetry(scheme, 4), "{scheme:?} drifted at 4 workers");
        // ECN is off and no instant carries two cross-partition arrivals
        // at one node, so this scenario must also degenerate to the
        // serial calendar byte for byte.
        assert_eq!(one, chain_serial_telemetry(scheme), "{scheme:?} differs from serial engine");
        digests.push(fnv1a(&one));
    }
    // Golden digests (SIH, DSH, BShare): pin the partitioned engine's
    // full telemetry across refactors at every worker count. Pinned at
    // the engine's introduction, when the partitioned path reproduced
    // the serial calendar exactly on this ECN-free scenario. (Last
    // rebaselined for the per-class pause telemetry breakdown —
    // serialization-only; the event stream is untouched.)
    assert_eq!(
        digests,
        vec![7_021_700_113_893_658_252, 15_562_023_392_353_366_219, 734_044_542_953_011_810,],
        "partitioned telemetry drifted"
    );
}
