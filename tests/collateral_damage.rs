//! Fig. 13 behaviour: a fan-in burst into R1 must not collapse the
//! throughput of the innocent flow F0 (H0→R0) under DSH, while SIH's low
//! pause threshold stalls it.

mod common;

use common::{raw_params, run};
use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetworkBuilder, ThroughputSample};
use dsh_simcore::{Bandwidth, Delta, Time};
use dsh_transport::CcKind;

/// Builds the paper's Fig. 13a unit and returns F0's goodput series.
fn victim_throughput(scheme: Scheme) -> Vec<ThroughputSample> {
    let mut b = NetworkBuilder::new(raw_params(scheme));
    let bw = Bandwidth::from_gbps(100);
    let d = Delta::from_us(2);
    let s0 = b.switch();
    let s1 = b.switch();
    b.link(s0, s1, bw, d);
    let h0 = b.host();
    let h1 = b.host();
    b.link(h0, s0, bw, d);
    b.link(h1, s0, bw, d);
    let r0 = b.host();
    let r1 = b.host();
    b.link(r0, s1, bw, d);
    b.link(r1, s1, bw, d);
    // 24 fan-in senders attached to S1 (so the congestion point is S1 and
    // the S0→S1 ingress queue at S1 is what gets paused).
    let fan: Vec<_> = (0..24)
        .map(|_| {
            let h = b.host();
            b.link(h, s1, bw, d);
            h
        })
        .collect();
    let mut net = b.build();

    // Long-lived flows F0: H0→R0 (innocent) and F1: H1→R1 (shares the
    // congested destination). They share the S0-S1 link, so each runs at
    // ~50 Gb/s before the burst.
    let f0 = net.add_flow(FlowSpec {
        src: h0,
        dst: r0,
        size: 40_000_000,
        class: 0,
        start: Time::ZERO,
        cc: CcKind::Uncontrolled,
    });
    net.add_flow(FlowSpec {
        src: h1,
        dst: r1,
        size: 40_000_000,
        class: 0,
        start: Time::ZERO,
        cc: CcKind::Uncontrolled,
    });
    // At t = 0.1 ms, 24 concurrent 64 KB fan-in flows hit R1.
    for &h in &fan {
        net.add_flow(FlowSpec {
            src: h,
            dst: r1,
            size: 64 * 1024,
            class: 0,
            start: Time::from_us(100),
            cc: CcKind::Uncontrolled,
        });
    }
    net.monitor_flow(f0);
    let net = run(net, Time::from_us(800));
    assert_eq!(net.data_drops(), 0, "must stay lossless");
    net.flow_throughput(f0).to_vec()
}

/// Minimum goodput seen in the window after the burst begins.
fn min_after_burst(samples: &[ThroughputSample]) -> f64 {
    samples
        .iter()
        .filter(|s| s.time >= Time::from_us(120) && s.time <= Time::from_us(500))
        .map(|s| s.gbps)
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn innocent_flow_reaches_half_line_rate_before_burst() {
    let samples = victim_throughput(Scheme::Dsh);
    let pre: Vec<f64> = samples
        .iter()
        .filter(|s| s.time >= Time::from_us(60) && s.time < Time::from_us(100))
        .map(|s| s.gbps)
        .collect();
    let avg = pre.iter().sum::<f64>() / pre.len() as f64;
    assert!((avg - 50.0).abs() < 8.0, "pre-burst avg {avg} Gb/s");
}

#[test]
fn sih_collateral_damage_stalls_the_victim() {
    let min = min_after_burst(&victim_throughput(Scheme::Sih));
    // The paper's Fig. 13b: F0's throughput is dragged far down by the
    // pause on the S0→S1 ingress class.
    assert!(min < 20.0, "SIH victim min throughput {min} Gb/s");
}

#[test]
fn dsh_protects_the_victim() {
    let sih_min = min_after_burst(&victim_throughput(Scheme::Sih));
    let dsh_min = min_after_burst(&victim_throughput(Scheme::Dsh));
    assert!(
        dsh_min > sih_min + 10.0,
        "DSH min {dsh_min} Gb/s must be well above SIH min {sih_min} Gb/s"
    );
    assert!(dsh_min > 30.0, "DSH victim min throughput {dsh_min} Gb/s");
}
