//! Faults across a partition boundary under the intra-run parallel
//! engine: a fig13x-style link-flap plan on a cut link must keep the MMU
//! audit-clean and produce byte-identical telemetry at any worker count.
//!
//! The comparison holds the *engine* fixed (partitioned at 1 vs 2 vs 4
//! workers): fig13x runs DCQCN, whose ECN marking draws from the RNG, and
//! the partitioned engine deliberately gives each partition its own
//! stream — self-consistent at every worker count, but not byte-equal to
//! the serial calendar (DESIGN.md §13 documents the caveat).

use dsh_bench::fig13x::{self, FlapExperiment};
use dsh_core::Scheme;
use dsh_net::topology::{leaf_spine, LeafSpineShape};
use dsh_net::{partition, NetParams, MAX_PARTITIONS};
use dsh_simcore::{Bandwidth, Delta};

/// The flap scenario: fig13x's smoke base with a 300 µs flap period on
/// the leaf0–spine0 uplink.
fn flapped(scheme: Scheme) -> FlapExperiment {
    let mut exp = fig13x::smoke_base(scheme);
    exp.flap_period = Some(Delta::from_us(300));
    exp
}

/// The flapped link must actually cross a partition boundary, or this
/// file tests nothing: rebuild fig13x's 2×2 fabric and check the plan.
#[test]
fn the_flapped_link_is_cross_partition() {
    let ls = leaf_spine(
        NetParams::tomahawk(Scheme::Dsh),
        LeafSpineShape {
            leaves: 2,
            spines: 2,
            hosts_per_leaf: 4,
            downlink: Bandwidth::from_gbps(100),
            uplink: Bandwidth::from_gbps(100),
            link_delay: Delta::from_us(2),
        },
    );
    let (leaf0, spine0) = (ls.leaves[0], ls.spines[0]);
    let plan = partition(&ls.builder.build(), MAX_PARTITIONS).expect("2x2 must partition");
    assert_eq!(plan.parts(), 4, "four switches get four partitions");
    assert_ne!(
        plan.owner()[leaf0.0],
        plan.owner()[spine0.0],
        "the flapped uplink must be a cut link"
    );
}

#[test]
fn flap_telemetry_is_byte_identical_at_any_worker_count() {
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        let exp = flapped(scheme);
        // run_flap_report audits every MMU and asserts zero admission
        // drops internally; the flap itself must have cost something.
        let (r1, t1) = fig13x::run_flap_report(&exp, 1);
        assert!(r1.link_drops > 0, "{scheme:?}: a flap under load must drain frames");
        assert!(r1.retransmissions > 0, "{scheme:?}: lost frames must be retransmitted");
        assert_eq!(r1.wedged, 0, "{scheme:?}: no flow may wedge");
        for workers in [2, 4] {
            let (rn, tn) = fig13x::run_flap_report(&exp, workers);
            assert_eq!(t1, tn, "{scheme:?}: telemetry drifted at {workers} workers");
            // FlapResult is f64-valued; Debug prints the shortest
            // round-trippable form, so equal strings mean bit-equal.
            assert_eq!(
                format!("{r1:?}"),
                format!("{rn:?}"),
                "{scheme:?}: results drifted at {workers} workers"
            );
        }
    }
}

/// The fault-free baseline must also hold across worker counts — the
/// window driver still paces (and merges) even with nothing to fault.
#[test]
fn baseline_telemetry_is_byte_identical_at_any_worker_count() {
    let exp = fig13x::smoke_base(Scheme::Dsh);
    let (r1, t1) = fig13x::run_flap_report(&exp, 1);
    assert_eq!(r1.link_drops, 0);
    let (r4, t4) = fig13x::run_flap_report(&exp, 4);
    assert_eq!(t1, t4, "baseline telemetry drifted at 4 workers");
    assert_eq!(format!("{r1:?}"), format!("{r4:?}"));
}
