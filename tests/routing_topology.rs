//! Routing and topology behaviour: ECMP spreading, reroute around failed
//! links, fat-tree reachability.

mod common;

use common::raw_params;
use dsh_core::Scheme;
use dsh_net::topology::{fat_tree, leaf_spine, LeafSpineShape};
use dsh_net::FlowSpec;
use dsh_simcore::{Bandwidth, Delta, Time};
use dsh_transport::CcKind;

#[test]
fn ecmp_spreads_flows_across_spines() {
    // 2 racks x 1 host, 4 spines: many flows between the racks must use
    // more than one spine (per-flow hashing).
    let shape = LeafSpineShape {
        leaves: 2,
        spines: 4,
        hosts_per_leaf: 1,
        downlink: Bandwidth::from_gbps(100),
        uplink: Bandwidth::from_gbps(100),
        link_delay: Delta::from_us(2),
    };
    let ls = leaf_spine(raw_params(Scheme::Dsh), shape);
    let src = ls.hosts[0][0];
    let dst = ls.hosts[1][0];
    let mut net = ls.builder.build();
    // 64 one-packet flows; if ECMP hashed them all to one spine the
    // completion span collapses to serial transmission on one uplink.
    for i in 0..64 {
        net.add_flow(FlowSpec {
            src,
            dst,
            size: 1500,
            class: (i % 7) as u8,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
    }
    let mut sim = net.into_sim();
    sim.run_until(Time::from_ms(5));
    let net = sim.into_model();
    assert_eq!(net.fct_records().len(), 64);
    assert_eq!(net.data_drops(), 0);
}

#[test]
fn traffic_reroutes_around_a_failed_spine_link() {
    let shape = LeafSpineShape {
        leaves: 2,
        spines: 2,
        hosts_per_leaf: 2,
        downlink: Bandwidth::from_gbps(100),
        uplink: Bandwidth::from_gbps(100),
        link_delay: Delta::from_us(2),
    };
    let mut ls = leaf_spine(raw_params(Scheme::Dsh), shape);
    // Fail L0-S0: everything L0<->L1 must go via S1.
    let (l0, s0) = (ls.leaves[0], ls.spines[0]);
    ls.builder.remove_link(l0, s0);
    let src = ls.hosts[0][0];
    let dst = ls.hosts[1][0];
    let mut net = ls.builder.build();
    net.add_flow(FlowSpec {
        src,
        dst,
        size: 500_000,
        class: 0,
        start: Time::ZERO,
        cc: CcKind::Uncontrolled,
    });
    let mut sim = net.into_sim();
    sim.run_until(Time::from_ms(5));
    let net = sim.into_model();
    assert_eq!(net.fct_records().len(), 1, "flow must complete via the surviving spine");
    assert_eq!(net.data_drops(), 0);
}

#[test]
fn bounce_paths_form_after_the_fig12_failures() {
    // With S0-L3 and S1-L0 failed, L0->L3 must take a 4-hop bounce path
    // (L0 -> S0 -> L1|L2 -> S1 -> L3). The flow still completes, and its
    // FCT reflects the extra hops.
    let mut ls = leaf_spine(raw_params(Scheme::Dsh), LeafSpineShape::paper_deadlock());
    let (s0, s1) = (ls.spines[0], ls.spines[1]);
    let (l0, l3) = (ls.leaves[0], ls.leaves[3]);
    ls.builder.remove_link(s0, l3);
    ls.builder.remove_link(s1, l0);
    let src = ls.hosts[0][0];
    let dst = ls.hosts[3][0];
    let mut net = ls.builder.build();
    net.add_flow(FlowSpec {
        src,
        dst,
        size: 1500,
        class: 0,
        start: Time::ZERO,
        cc: CcKind::Uncontrolled,
    });
    let mut sim = net.into_sim();
    sim.run_until(Time::from_ms(5));
    let net = sim.into_model();
    assert_eq!(net.fct_records().len(), 1);
    let fct = net.fct_records()[0].fct();
    // Five links (host->L0->S0->Lx->S1->L3->host is 6 links): at least
    // 6 propagation delays of 2 us.
    assert!(fct >= Delta::from_us(12), "bounce path too short: {fct}");
}

#[test]
fn fat_tree_all_pairs_reachable_across_pods() {
    let ft = fat_tree(raw_params(Scheme::Dsh), 4, Bandwidth::from_gbps(100), Delta::from_us(2));
    let hosts = ft.all_hosts();
    let mut net = ft.builder.build();
    // One flow from every pod to the next pod.
    let per_pod = hosts.len() / 4;
    for pod in 0..4 {
        let src = hosts[pod * per_pod];
        let dst = hosts[((pod + 1) % 4) * per_pod + 1];
        net.add_flow(FlowSpec {
            src,
            dst,
            size: 64_000,
            class: 0,
            start: Time::ZERO,
            cc: CcKind::Uncontrolled,
        });
    }
    let mut sim = net.into_sim();
    sim.run_until(Time::from_ms(5));
    let net = sim.into_model();
    assert_eq!(net.fct_records().len(), 4, "cross-pod flows must complete");
    assert_eq!(net.data_drops(), 0);
}

#[test]
fn intra_pod_and_intra_rack_paths_work() {
    let ft = fat_tree(raw_params(Scheme::Dsh), 4, Bandwidth::from_gbps(100), Delta::from_us(2));
    let hosts = ft.all_hosts();
    let mut net = ft.builder.build();
    // Same edge switch (hosts 0,1) and same pod different edge (0, 2).
    net.add_flow(FlowSpec {
        src: hosts[0],
        dst: hosts[1],
        size: 1500,
        class: 0,
        start: Time::ZERO,
        cc: CcKind::Uncontrolled,
    });
    net.add_flow(FlowSpec {
        src: hosts[0],
        dst: hosts[2],
        size: 1500,
        class: 1,
        start: Time::ZERO,
        cc: CcKind::Uncontrolled,
    });
    let mut sim = net.into_sim();
    sim.run_until(Time::from_ms(2));
    let net = sim.into_model();
    let recs = net.fct_records();
    assert_eq!(recs.len(), 2);
    // Intra-rack (2 links) is faster than intra-pod (4 links).
    let same_edge = recs.iter().find(|r| r.flow.0 == 0).unwrap().fct();
    let same_pod = recs.iter().find(|r| r.flow.0 == 1).unwrap().fct();
    assert!(same_edge < same_pod, "{same_edge} !< {same_pod}");
}
