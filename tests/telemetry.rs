//! End-to-end telemetry: a run's structured report must serialize to
//! JSON, parse back, and carry the PFC/occupancy signals the figure
//! binaries plot — the same export `--json` prints from `fig06`/`fig11`.

mod common;

use common::{add_incast, assert_lossless, raw_params, run, star};
use dsh_core::Scheme;
use dsh_simcore::{Json, Time};
use dsh_transport::CcKind;

const END: Time = Time::from_ms(50);

/// An incast heavy enough to trigger PFC, so every telemetry channel has
/// signal: pauses, latency histograms, occupancy, clean audits.
fn pfc_heavy_run(scheme: Scheme) -> dsh_net::Network {
    let (mut net, hosts) = star(raw_params(scheme), 9);
    add_incast(&mut net, &hosts[..8], hosts[8], 1_000_000, 0, Time::ZERO, CcKind::Uncontrolled);
    run(net, END)
}

#[test]
fn telemetry_json_roundtrips_and_is_consumable() {
    let net = pfc_heavy_run(Scheme::Dsh);
    assert_lossless(&net, END);

    // Emit exactly what a figure binary would print...
    let text = net.telemetry_report(END).to_json().to_string();
    // ...and consume it back as a downstream tool would.
    let doc = Json::parse(&text).expect("telemetry must be valid JSON");

    assert_eq!(doc.get("data_drops").and_then(Json::as_u64), Some(0));
    let switches = doc.get("switches").and_then(Json::as_arr).expect("switches array");
    assert_eq!(switches.len(), 1);
    let sw = &switches[0];
    assert_eq!(sw.get("audit").and_then(|a| a.get("clean")), Some(&Json::Bool(true)));

    // The incast must have been paused, not dropped...
    let stats = sw.get("stats").expect("stats object");
    assert_eq!(stats.get("dropped_packets").and_then(Json::as_u64), Some(0));
    assert!(stats.get("queue_pauses").and_then(Json::as_u64).unwrap() > 0);
    let attribution = sw.get("drop_attribution").expect("attribution object");
    assert_eq!(attribution.get("insurance_full").and_then(Json::as_u64), Some(0));

    // ...the occupancy series must show the buffer filling up, and the
    // audit snapshot must show it fully drained by run end (the series
    // itself records window *peaks*, so its tail stays positive)...
    let occupancy = sw.get("occupancy").and_then(Json::as_arr).expect("occupancy series");
    assert!(occupancy.len() > 2, "series has {} points", occupancy.len());
    let peak = occupancy.iter().filter_map(|p| p.get("bytes").and_then(Json::as_u64)).max();
    assert!(peak.unwrap() > 100_000, "peak occupancy {peak:?}");
    let snapshot = sw.get("audit").and_then(|a| a.get("occupancy")).expect("audit snapshot");
    for segment in ["shared", "private", "headroom", "insurance"] {
        assert_eq!(
            snapshot.get(segment).and_then(Json::as_u64),
            Some(0),
            "{segment} must drain by run end"
        );
    }

    // ...and some sender uplink must have closed pause->resume intervals.
    let ports = doc.get("ports").and_then(Json::as_arr).expect("ports array");
    assert_eq!(ports.len(), 9 + 9, "9 host uplinks + 9 switch egress ports");
    let paused_ns: u64 =
        ports.iter().filter_map(|p| p.get("queue_pause_ns").and_then(Json::as_u64)).sum();
    assert!(paused_ns > 0, "incast must accumulate QOFF time");
    let latency_counts: u64 = ports
        .iter()
        .filter_map(|p| p.get("pause_latency"))
        .filter_map(|h| h.get("count").and_then(Json::as_u64))
        .sum();
    assert!(latency_counts > 0, "closed pause intervals must be histogrammed");
}

#[test]
fn sih_and_dsh_attribute_zero_drops_differently_sized_headroom() {
    // Both schemes stay lossless here; the report must say so per scheme
    // with a clean audit and an all-zero drop attribution.
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        let net = pfc_heavy_run(scheme);
        let report = net.telemetry_report(END);
        assert!(report.lossless_violations().is_empty(), "{scheme:?} violated losslessness");
        let sw = &report.switches[0];
        assert!(sw.audit.is_clean(), "{}", sw.audit);
        assert_eq!(sw.attribution, Default::default(), "no admission rule may have fired");
        assert!(sw.port_drops.iter().all(|d| d.packets == 0));
    }
}
