//! Fig. 11 behaviour at integration scale: DSH absorbs substantially
//! larger fan-in bursts than SIH before any PFC PAUSE is generated.

mod common;

use common::{add_incast, raw_params, run, star};
use dsh_core::Scheme;
use dsh_simcore::Time;
use dsh_transport::CcKind;

/// Whether a 16-way fan-in of `per_sender` bytes triggers any PFC pause.
///
/// Uses a full 32-port switch (as in Fig. 11: the headroom SIH reserves —
/// and DSH reclaims — scales with the chip's port count, which is what
/// produces the 4x gap on a Tomahawk).
fn burst_pauses(scheme: Scheme, per_sender: u64) -> bool {
    let (mut net, hosts) = star(raw_params(scheme), 32);
    let dst = hosts[30];
    add_incast(&mut net, &hosts[2..18], dst, per_sender, 0, Time::ZERO, CcKind::Uncontrolled);
    let net = run(net, Time::from_ms(50));
    assert_eq!(net.data_drops(), 0, "must stay lossless");
    assert_eq!(net.fct_records().len(), 16, "all burst flows must finish");
    net.mmu_stats().queue_pauses + net.mmu_stats().port_pauses > 0
}

/// Largest per-sender burst (in 16 KB steps) that completes pause-free.
fn pause_free_limit(scheme: Scheme) -> u64 {
    let step = 16 * 1024;
    let mut last_ok = 0;
    for mult in 1..=80 {
        let size = mult * step;
        if burst_pauses(scheme, size) {
            break;
        }
        last_ok = size;
    }
    last_ok
}

#[test]
fn dsh_absorbs_several_times_more_burst_than_sih() {
    let sih = pause_free_limit(Scheme::Sih);
    let dsh = pause_free_limit(Scheme::Dsh);
    assert!(sih > 0, "SIH must absorb something");
    // Paper Fig. 11: DSH absorbs over 4x more (40% vs <10% of buffer).
    assert!(dsh >= 3 * sih, "DSH {dsh} bytes vs SIH {sih} bytes per sender");
}

#[test]
fn tiny_bursts_are_pause_free_for_both() {
    assert!(!burst_pauses(Scheme::Sih, 16 * 1024));
    assert!(!burst_pauses(Scheme::Dsh, 16 * 1024));
}

#[test]
fn huge_bursts_pause_both() {
    assert!(burst_pauses(Scheme::Sih, 2_000_000));
    assert!(burst_pauses(Scheme::Dsh, 2_000_000));
}
