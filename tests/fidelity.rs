//! Hybrid-fidelity equivalence: with `util_threshold = 0` every fluid
//! admission is refused (the blocking link escalates before the first
//! byte), so a hybrid run must reproduce the packet engine's results
//! byte for byte — same completion records, same delivery/drop/pause
//! counters — on arbitrary leaf–spine workloads (DESIGN.md §14).

use dsh_net::topology::{leaf_spine, LeafSpineShape};
use dsh_net::{FidelityMode, FlowSpec, NetParams, Network, NodeId};
use dsh_simcore::{Bandwidth, Delta, Time};
use dsh_transport::CcKind;
use proptest::prelude::*;

use dsh_core::Scheme;

/// Builds a loaded micro leaf–spine; `fidelity` is the only knob that
/// differs between the two runs of a comparison.
fn loaded_leaf_spine(
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    flows: &[(usize, usize, u64, u64, u8)],
    cc: CcKind,
    seed: u64,
    fidelity: FidelityMode,
) -> Network {
    let params = NetParams::tomahawk(Scheme::Dsh).with_seed(seed).with_fidelity(fidelity);
    let ls = leaf_spine(
        params,
        LeafSpineShape {
            leaves,
            spines,
            hosts_per_leaf,
            downlink: Bandwidth::from_gbps(100),
            uplink: Bandwidth::from_gbps(100),
            link_delay: Delta::from_us(2),
        },
    );
    let hosts: Vec<NodeId> = ls.all_hosts();
    let mut net = ls.builder.build();
    for &(src, dst, size, start_ns, class) in flows {
        let (src, dst) = (hosts[src % hosts.len()], hosts[dst % hosts.len()]);
        if src == dst {
            continue;
        }
        net.add_flow(FlowSpec {
            src,
            dst,
            size: 1_000 + size % 400_000,
            class: class % 6,
            start: Time::from_ns(start_ns % 200_000),
            cc,
        });
    }
    net
}

/// Renders everything the comparison pins: completion records, delivery
/// and drop counters, and the per-port pause ledgers.
fn run_digest(net: Network, deadline: Time) -> String {
    let mut sim = net.into_sim();
    sim.run_until(deadline);
    let events = sim.events_processed();
    let net = sim.into_model();
    let ledgers: Vec<_> = net
        .pause_ledgers(deadline)
        .filter(|l| l.queue_level + l.port_level != Delta::ZERO)
        .collect();
    format!(
        "events={events} fcts={:?} delivered={} drops={} pauses={ledgers:?}",
        net.fct_records(),
        net.packets_delivered(),
        net.data_drops(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `hybrid:0` must be indistinguishable from `packet` down to the
    /// calendar event count, for any workload and any transport.
    #[test]
    fn hybrid_threshold_zero_matches_packet_on_random_leaf_spines(
        leaves in 2usize..4,
        spines in 2usize..4,
        hosts_per_leaf in 2usize..5,
        seed in 0u64..1000,
        cc_pick in 0u8..3,
        flows in proptest::collection::vec(
            (0usize..64, 0usize..64, 0u64..400_000, 0u64..200_000, 0u8..6),
            4..16,
        ),
    ) {
        let cc = match cc_pick {
            0 => CcKind::Uncontrolled,
            1 => CcKind::Dcqcn,
            _ => CcKind::PowerTcp,
        };
        let deadline = Time::from_ms(3);
        let hybrid_zero =
            FidelityMode::Hybrid { util_threshold: 0.0, quiesce: Delta::from_us(100) };
        let packet = run_digest(
            loaded_leaf_spine(
                leaves, spines, hosts_per_leaf, &flows, cc, seed, FidelityMode::Packet,
            ),
            deadline,
        );
        let hybrid = run_digest(
            loaded_leaf_spine(leaves, spines, hosts_per_leaf, &flows, cc, seed, hybrid_zero),
            deadline,
        );
        // Guard against a vacuous pass: the generated workload must
        // actually complete flows for the comparison to mean anything.
        prop_assert!(!packet.contains("fcts=[]"), "degenerate workload: {packet}");
        prop_assert_eq!(packet, hybrid);
    }
}
