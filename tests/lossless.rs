//! End-to-end losslessness: under extreme incast, both SIH and DSH must
//! pause rather than drop, and all traffic must eventually be delivered.

mod common;

use common::{add_incast, assert_lossless, raw_params, run, star};
use dsh_core::Scheme;
use dsh_simcore::Time;
use dsh_transport::CcKind;

const END: Time = Time::from_ms(100);

fn incast_run(scheme: Scheme, senders: usize, size: u64) -> dsh_net::Network {
    let (mut net, hosts) = star(raw_params(scheme), senders + 1);
    let dst = hosts[senders];
    add_incast(&mut net, &hosts[..senders], dst, size, 0, Time::ZERO, CcKind::Uncontrolled);
    run(net, END)
}

#[test]
fn sih_extreme_incast_is_lossless() {
    // 16 senders x 2 MB = 32 MB into one 100G port: double the whole chip
    // buffer, squarely beyond SIH's footroom.
    let net = incast_run(Scheme::Sih, 16, 2_000_000);
    assert_lossless(&net, END);
    let st = net.mmu_stats();
    assert!(st.queue_pauses > 0, "incast must trigger PFC");
    assert_eq!(net.fct_records().len(), 16, "all flows must complete");
}

#[test]
fn dsh_extreme_incast_is_lossless() {
    let net = incast_run(Scheme::Dsh, 16, 2_000_000);
    assert_lossless(&net, END);
    let st = net.mmu_stats();
    assert!(st.queue_pauses > 0, "incast must trigger queue-level PFC");
    assert_eq!(net.fct_records().len(), 16, "all flows must complete");
}

#[test]
fn dsh_port_level_insurance_is_lossless_under_multi_class_incast() {
    // Spread the incast over all 7 classes so the port-level threshold is
    // what ultimately protects the buffer.
    let (mut net, hosts) = star(raw_params(Scheme::Dsh), 17);
    let dst = hosts[16];
    for (i, &src) in hosts[..16].iter().enumerate() {
        add_incast(
            &mut net,
            &[src],
            dst,
            2_000_000,
            (i % 7) as u8,
            Time::ZERO,
            CcKind::Uncontrolled,
        );
    }
    let net = run(net, END);
    assert_lossless(&net, END);
    assert_eq!(net.fct_records().len(), 16);
}

#[test]
fn small_flows_complete_quickly_without_pauses() {
    // A single 64 KB flow through an idle switch: finishes in ~ tens of
    // microseconds, no PFC at all.
    let (mut net, hosts) = star(raw_params(Scheme::Dsh), 2);
    add_incast(&mut net, &hosts[..1], hosts[1], 64 * 1024, 0, Time::ZERO, CcKind::Uncontrolled);
    let net = run(net, Time::from_ms(5));
    assert_eq!(net.fct_records().len(), 1);
    let fct = net.fct_records()[0].fct();
    // 64 KB at 100G is ~5.4 us serialization + 2 hops of 2 us propagation.
    assert!(fct < dsh_simcore::Delta::from_us(60), "fct {fct}");
    assert_eq!(net.mmu_stats().queue_pauses, 0);
    assert_lossless(&net, Time::from_ms(5));
}

#[test]
fn mmu_buffers_fully_drain_after_the_storm() {
    let net = incast_run(Scheme::Dsh, 8, 500_000);
    assert_lossless(&net, END);
    let st = net.mmu_stats();
    assert_eq!(st.queue_pauses, st.queue_resumes, "every pause must resume");
    assert_eq!(st.port_pauses, st.port_resumes, "every port pause must resume");
}
