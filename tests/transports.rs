//! End-to-end transport behaviour: DCQCN and PowerTCP flows complete,
//! adapt to congestion, and PowerTCP keeps queues (and thus PFC activity)
//! lower than DCQCN — the property the paper's Fig. 6/14 rely on.

mod common;

use common::{add_incast, run, star};
use dsh_core::Scheme;
use dsh_net::{EcnConfig, NetParams};
use dsh_simcore::Time;
use dsh_transport::CcKind;

fn cc_params(scheme: Scheme) -> NetParams {
    let mut p = NetParams::tomahawk(scheme);
    p.ecn = EcnConfig::for_100g();
    p
}

fn incast_with(cc: CcKind, scheme: Scheme) -> dsh_net::Network {
    let (mut net, hosts) = star(cc_params(scheme), 17);
    let dst = hosts[16];
    add_incast(&mut net, &hosts[..16], dst, 1_000_000, 0, Time::ZERO, cc);
    run(net, Time::from_ms(20))
}

#[test]
fn dcqcn_incast_completes_losslessly() {
    let net = incast_with(CcKind::Dcqcn, Scheme::Sih);
    assert_eq!(net.data_drops(), 0);
    assert_eq!(net.fct_records().len(), 16, "all DCQCN flows must complete");
}

#[test]
fn powertcp_incast_completes_losslessly() {
    let net = incast_with(CcKind::PowerTcp, Scheme::Sih);
    assert_eq!(net.data_drops(), 0);
    assert_eq!(net.fct_records().len(), 16, "all PowerTCP flows must complete");
}

#[test]
fn congestion_control_reduces_pfc_pressure_vs_uncontrolled() {
    let raw = incast_with(CcKind::Uncontrolled, Scheme::Sih);
    let dcqcn = incast_with(CcKind::Dcqcn, Scheme::Sih);
    let raw_pauses = raw.mmu_stats().queue_pauses;
    let dcqcn_pauses = dcqcn.mmu_stats().queue_pauses;
    assert!(dcqcn_pauses <= raw_pauses, "DCQCN pauses {dcqcn_pauses} vs uncontrolled {raw_pauses}");
}

#[test]
fn powertcp_keeps_buffers_lower_than_dcqcn_in_steady_state() {
    // Both transports overshoot in the first RTTs (line-rate start /
    // 1-BDP initial window). The paper's property is about *persistent*
    // occupancy, so compare pause activity after the first millisecond.
    let steady_pauses = |cc: CcKind| {
        let (mut net, hosts) = star(cc_params(Scheme::Sih), 17);
        let dst = hosts[16];
        add_incast(&mut net, &hosts[..16], dst, 4_000_000, 0, Time::ZERO, cc);
        let mut sim = net.into_sim();
        sim.run_until(Time::from_ms(1));
        let at_1ms = sim.model().mmu_stats().queue_pauses;
        sim.run_until(Time::from_ms(6));
        sim.model().mmu_stats().queue_pauses - at_1ms
    };
    let d = steady_pauses(CcKind::Dcqcn);
    let p = steady_pauses(CcKind::PowerTcp);
    assert!(p <= d, "PowerTCP steady-state pauses {p} must not exceed DCQCN's {d}");
}

#[test]
fn fcts_are_ordered_by_flow_size() {
    // Sanity of the FCT pipeline: with a shared bottleneck and equal
    // start, a 4x larger flow cannot finish faster than the small one on
    // average.
    let (mut net, hosts) = star(cc_params(Scheme::Dsh), 3);
    let dst = hosts[2];
    add_incast(&mut net, &hosts[..1], dst, 200_000, 0, Time::ZERO, CcKind::Dcqcn);
    add_incast(&mut net, &hosts[1..2], dst, 800_000, 1, Time::ZERO, CcKind::Dcqcn);
    let net = run(net, Time::from_ms(20));
    let recs = net.fct_records();
    assert_eq!(recs.len(), 2);
    let small = recs.iter().find(|r| r.size == 200_000).unwrap();
    let large = recs.iter().find(|r| r.size == 800_000).unwrap();
    assert!(large.fct() > small.fct());
}
