//! Loss-recovery regimes end to end: the lossy (no-PFC) switch mode must
//! drop instead of pausing and still deliver every flow through recovery,
//! selective repeat must repair exactly the lost segments (cheaper than a
//! go-back-N rewind at the same drop rate), and every regime must stay
//! bit-identical at any executor width.

mod common;

use common::{add_incast, assert_bounded_loss, assert_lossless, raw_params, run, star};
use dsh_core::Scheme;
use dsh_net::topology::{leaf_spine, LeafSpine, LeafSpineShape};
use dsh_net::{FaultPlan, FlowSpec, NetParams, Network};
use dsh_simcore::{Bandwidth, ByteSize, Delta, Executor, Time};
use dsh_transport::{CcKind, RecoveryConfig};
use proptest::prelude::*;

/// A 2×2 leaf–spine with `hosts_per_leaf` per rack, 100 Gb/s everywhere.
fn fabric(params: NetParams, hosts_per_leaf: usize) -> LeafSpine {
    leaf_spine(
        params,
        LeafSpineShape {
            leaves: 2,
            spines: 2,
            hosts_per_leaf,
            downlink: Bandwidth::from_gbps(100),
            uplink: Bandwidth::from_gbps(100),
            link_delay: Delta::from_us(2),
        },
    )
}

/// Cross-rack incast: every rack-0 host sends `size` bytes to the first
/// rack-1 host, so all flows transit the spine layer.
fn cross_rack_incast(hosts: &[Vec<dsh_net::NodeId>], net: &mut Network, size: u64, cc: CcKind) {
    for (i, &src) in hosts[0].iter().enumerate() {
        net.add_flow(FlowSpec {
            src,
            dst: hosts[1][0],
            size,
            class: 0,
            start: Time::ZERO + Delta::from_us(i as u64),
            cc,
        });
    }
}

/// Selective-repeat recovery config for a fabric with the given base RTT.
fn sr_for(params: &NetParams) -> RecoveryConfig {
    RecoveryConfig::for_rtt(params.base_rtt).selective_repeat()
}

/// The lossy switch mode's defining behavior: an overloaded no-PFC switch
/// sheds load with drop-tail admission drops — never a pause frame, never
/// a headroom byte — and go-back-N still completes every flow.
#[test]
fn lossy_incast_drops_instead_of_pausing() {
    let params = raw_params(Scheme::Lossy).with_buffer(ByteSize::kib(600)).with_default_recovery();
    let (mut net, hosts) = star(params, 4);
    add_incast(&mut net, &hosts[..3], hosts[3], 256 * 1024, 0, Time::ZERO, CcKind::Uncontrolled);
    let registered = net.flow_count();
    let end = Time::from_ms(10);
    let net = run(net, end);

    assert!(net.data_drops() > 0, "a 3:1 unpaced incast into 600 KiB never overflowed");
    assert_eq!(net.fct_records().len(), registered, "a dropped flow wedged");
    assert_eq!(net.failed_flow_count(), 0, "recoverable congestion loss failed a flow");
    assert!(net.retransmissions() > 0, "drops happened but recovery never kicked in");
    assert_bounded_loss(&net, end, net.packets_delivered());
}

/// Selective repeat on a corrupted spine link: receivers buffer
/// out-of-order arrivals and NACK the gaps, the sender repairs exactly
/// the holes, and every flow completes.
#[test]
fn selective_repeat_recovers_corruption() {
    let params = NetParams::tomahawk(Scheme::Dsh);
    let params = params.clone().with_recovery(sr_for(&params));
    let ls = fabric(params, 2);
    let (leaf0, spine0) = (ls.leaves[0], ls.spines[0]);
    let hosts = ls.hosts.clone();
    let mut net = ls.builder.build();
    cross_rack_incast(&hosts, &mut net, 256 * 1024, CcKind::Dcqcn);
    net.set_fault_plan(FaultPlan::new(11).corrupt_link(leaf0, spine0, 0.02));
    let registered = net.flow_count();
    let end = Time::from_ms(8);
    let net = run(net, end);

    assert_eq!(net.fct_records().len(), registered, "corruption wedged a flow under SR");
    assert_eq!(net.failed_flow_count(), 0);
    assert!(net.link_drops() > 0, "2% corruption on a loaded link lost nothing");
    assert!(net.nacks_sent() > 0, "losses recovered without a single NACK");
    assert!(net.sr_retransmitted_bytes() > 0, "NACKs flowed but no gap repair was sent");
    assert!(net.recovery_nacks() > 0, "no loss episode was attributed to a NACK");
    assert_lossless(&net, end);
}

/// The headline claim for selective repeat: at the same drop rate (the
/// fig13x-style flap + corruption plan), SR completes every flow while
/// retransmitting strictly fewer bytes than go-back-N, whose rewind
/// replays the whole window behind one lost segment.
#[test]
fn sr_retransmits_fewer_bytes_than_gbn() {
    let run_regime = |cfg: fn(&NetParams) -> RecoveryConfig| {
        let base = NetParams::tomahawk(Scheme::Dsh);
        let params = base.clone().with_recovery(cfg(&base));
        let ls = fabric(params, 2);
        let (leaf0, spine0) = (ls.leaves[0], ls.spines[0]);
        let hosts = ls.hosts.clone();
        let mut net = ls.builder.build();
        cross_rack_incast(&hosts, &mut net, 256 * 1024, CcKind::Dcqcn);
        net.set_fault_plan(
            FaultPlan::new(7)
                .flap(leaf0, spine0, Time::from_us(20), Time::from_us(120))
                .corrupt_link(leaf0, spine0, 0.01),
        );
        let registered = net.flow_count();
        let end = Time::from_ms(10);
        let net = run(net, end);
        assert_eq!(net.fct_records().len(), registered, "a flow wedged");
        assert_eq!(net.failed_flow_count(), 0, "a survivable fault failed a flow");
        assert!(net.link_drops() > 0, "the plan lost nothing");
        assert_lossless(&net, end);
        net.retransmitted_bytes()
    };
    let gbn = run_regime(|p| RecoveryConfig::for_rtt(p.base_rtt));
    let sr = run_regime(sr_for);
    assert!(gbn > 0, "go-back-N never retransmitted under the flap plan");
    assert!(
        sr < gbn,
        "selective repeat retransmitted {sr} bytes, go-back-N {gbn}: SR should repair less"
    );
}

/// One randomized fault scenario: flap schedule (non-overlapping, always
/// repaired) on a chosen uplink plus optional corruption.
#[derive(Clone, Copy, Debug)]
struct RandomFaults {
    uplink: usize,
    /// (gap before this flap, outage length) in µs; accumulated in order.
    flaps: [(u64, u64); 3],
    corruption: f64,
    seed: u64,
}

fn fault_strategy() -> impl Strategy<Value = RandomFaults> {
    (0usize..4, proptest::collection::vec((5u64..120, 5u64..70), 3..4), 0.0f64..0.02, 0u64..1000)
        .prop_map(|(uplink, flaps, corruption, seed)| RandomFaults {
            uplink,
            flaps: [flaps[0], flaps[1], flaps[2]],
            corruption,
            seed,
        })
}

/// The three regimes under test: lossless PFC with go-back-N, and the
/// lossy switch mode with each recovery regime.
#[derive(Clone, Copy, Debug)]
enum RegimeCell {
    PfcGbn,
    LossyGbn,
    LossySr,
}

impl RegimeCell {
    const ALL: [RegimeCell; 3] = [RegimeCell::PfcGbn, RegimeCell::LossyGbn, RegimeCell::LossySr];

    fn params(self, seed: u64) -> NetParams {
        let (scheme, sr) = match self {
            RegimeCell::PfcGbn => (Scheme::Dsh, false),
            RegimeCell::LossyGbn => (Scheme::Lossy, false),
            RegimeCell::LossySr => (Scheme::Lossy, true),
        };
        let base = NetParams::tomahawk(scheme).with_seed(seed);
        let cfg = if sr { sr_for(&base) } else { RecoveryConfig::for_rtt(base.base_rtt) };
        base.with_recovery(cfg)
    }
}

/// Builds, loads and runs the property fabric under one random scenario,
/// returning the finished network plus its registered flow count.
fn run_random(cell: RegimeCell, f: &RandomFaults) -> (Network, usize) {
    let ls = fabric(cell.params(f.seed), 2);
    let (leaf, spine) = (ls.leaves[f.uplink / 2], ls.spines[f.uplink % 2]);
    let hosts = ls.hosts.clone();
    let mut net = ls.builder.build();
    cross_rack_incast(&hosts, &mut net, 128 * 1024, CcKind::Dcqcn);

    let mut plan = FaultPlan::new(f.seed);
    let mut t = Delta::from_us(10);
    for &(gap, outage) in &f.flaps {
        let down = t + Delta::from_us(gap);
        let up = down + Delta::from_us(outage);
        plan = plan.flap(leaf, spine, Time::ZERO + down, Time::ZERO + up);
        t = up;
    }
    if f.corruption > 0.0 {
        plan = plan.corrupt_link(leaf, spine, f.corruption);
    }
    net.set_fault_plan(plan);
    let registered = net.flow_count();
    (run(net, Time::from_ms(10)), registered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under *any* always-repaired fault plan, in all three regimes
    /// (PFC+GBN, lossy+GBN, lossy+SR): every flow completes (none wedged,
    /// none failed — the plan always repairs), the MMU audit is clean,
    /// lossy cells never pause, and the run is byte-identical at 1 and 4
    /// executor threads.
    #[test]
    fn all_regimes_recover_random_fault_plans(f in fault_strategy()) {
        for cell in RegimeCell::ALL {
            let [serial, four] = [Executor::new(1), Executor::new(4)].map(|ex| {
                ex.par_map(vec![f, f], move |rf| {
                    let (net, registered) = run_random(cell, &rf);
                    let end = Time::from_ms(10);
                    let done = net.fct_records().len() as u64 + net.failed_flow_count();
                    assert_eq!(done, registered as u64, "wedged flow under {cell:?} {rf:?}");
                    match cell {
                        RegimeCell::PfcGbn => assert_lossless(&net, end),
                        RegimeCell::LossyGbn | RegimeCell::LossySr => {
                            assert_bounded_loss(&net, end, net.packets_delivered());
                        }
                    }
                    for (id, audit) in net.audit_all() {
                        assert!(
                            audit.is_clean(),
                            "dirty audit at {id} under {cell:?} {rf:?}: {:?}",
                            audit.violations
                        );
                    }
                    net.telemetry_report(end).to_json().to_string()
                })
            });
            prop_assert_eq!(serial, four, "thread count changed a {:?} fault run", cell);
        }
    }
}
