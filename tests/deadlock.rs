//! Fig. 12 behaviour: with two link failures creating a cyclic buffer
//! dependency, SIH deadlocks under fan-in congestion while DSH's extra
//! footroom avoids the pauses that close the cycle.
//!
//! Uses the same scenario code as the Fig. 12 experiment binary
//! (`dsh_bench::fig12`).

use dsh_bench::fig12::{run_many, run_once, Fig12Config};
use dsh_core::Scheme;
use dsh_simcore::Executor;
use dsh_transport::CcKind;

fn cfg() -> Fig12Config {
    let mut c = Fig12Config::small();
    // Test-size run: less traffic, earlier detection, and the stress
    // point where SIH's squeezed footroom wedges but DSH's does not.
    c.fan_in = 8;
    c.load = 0.5;
    c.arrival_jitter = dsh_simcore::Delta::from_us(100);
    c.horizon = dsh_simcore::Delta::from_ms(6);
    c.duration = dsh_simcore::Delta::from_ms(8);
    c.detect_threshold = dsh_simcore::Delta::from_ms(1);
    c
}

#[test]
fn dsh_survives_where_sih_deadlocks() {
    // Same seeds, same traffic: DSH must deadlock strictly less often
    // than SIH, and SIH must actually wedge somewhere (otherwise the
    // scenario is not exercising the CBD at all).
    let seeds = 3;
    let sih = run_many(Scheme::Sih, CcKind::Dcqcn, &cfg(), seeds, &Executor::from_env());
    let dsh = run_many(Scheme::Dsh, CcKind::Dcqcn, &cfg(), seeds, &Executor::from_env());
    let sih_hits = sih.iter().filter(|r| r.onset.is_some()).count();
    let dsh_hits = dsh.iter().filter(|r| r.onset.is_some()).count();
    assert!(sih_hits >= 1, "SIH never deadlocked; scenario too gentle");
    // On failure, name the wedged switch egress ports of every DSH run so
    // the report says *where* the fabric stuck, not just that it did.
    let dsh_blocked: Vec<&String> = dsh.iter().flat_map(|r| r.blocked.iter()).collect();
    assert!(
        dsh_hits < sih_hits || (dsh_hits == 0 && sih_hits >= 1),
        "DSH ({dsh_hits}/{seeds}) must deadlock less than SIH ({sih_hits}/{seeds}); \
         wedged ports:\n{dsh_blocked:#?}"
    );
}

#[test]
fn no_failures_means_no_deadlock_even_for_sih() {
    // Same traffic without the link failures: shortest paths are direct
    // (no leaf bounce), so no cyclic buffer dependency can form.
    let r = run_once(Scheme::Sih, CcKind::Dcqcn, &Fig12Config { fail_links: false, ..cfg() }, 1);
    assert!(
        r.onset.is_none(),
        "deadlock without a CBD at {:?}; wedged ports:\n{:#?}",
        r.onset,
        r.blocked
    );
}

#[test]
fn pfc_watchdog_breaks_the_deadlock_at_the_cost_of_drops() {
    // Industry mitigation (extension experiment): arm the watchdog on the
    // SIH fabric that deadlocks. The wedge is broken — no persistent
    // blockage remains — but only because frames were dropped, which DSH
    // avoids needing in the first place.
    let mut c = cfg();
    // Pick a seed that deadlocks without the watchdog.
    let base = run_many(Scheme::Sih, CcKind::Dcqcn, &c, 3, &Executor::from_env());
    let Some(wedged) = base.iter().find(|r| r.onset.is_some()) else {
        panic!("expected at least one SIH deadlock to mitigate");
    };
    // The watchdog must fire well inside the detector threshold,
    // otherwise the run still *looks* wedged between flushes.
    c.watchdog = Some(dsh_simcore::Delta::from_us(400));
    let mitigated = run_once(Scheme::Sih, CcKind::Dcqcn, &c, wedged.seed);
    assert!(mitigated.onset.is_none(), "watchdog must break the deadlock");
    assert!(mitigated.watchdog_drops > 0, "mitigation must have cost drops");
}
