//! Property tests of the link partitioner behind the intra-run parallel
//! engine: any connected topology must split into non-empty,
//! host-closed blocks whose guaranteed lookahead is exactly the minimum
//! propagation delay over the cut links — and a zero-delay cut link must
//! be rejected at build time, never discovered as a hang at run time.

use dsh_core::Scheme;
use dsh_net::topology::{fat_tree, leaf_spine, LeafSpineShape};
use dsh_net::{
    partition, NetParams, Network, NetworkBuilder, NodeId, PartitionError, MAX_PARTITIONS,
};
use dsh_simcore::{Bandwidth, Delta};
use proptest::prelude::*;

const BW: Bandwidth = Bandwidth::from_gbps(100);

/// A generated topology plus the ground truth the partitioner must
/// respect: its switches, its switch–switch links (with delays), and
/// each host's uplink switch.
struct Topo {
    net: Network,
    switches: Vec<NodeId>,
    switch_links: Vec<(NodeId, NodeId, Delta)>,
    host_uplinks: Vec<(NodeId, NodeId)>,
}

/// A varied but deterministic inter-switch delay in 1–4 µs.
fn delay(seed: u64, i: usize) -> Delta {
    Delta::from_us(1 + (seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 61) % 4)
}

/// A chain (or ring) of `n` switches with one host each and varied
/// inter-switch delays.
fn chain_or_ring(n: usize, seed: u64, ring: bool) -> Topo {
    let mut b = NetworkBuilder::new(NetParams::tomahawk(Scheme::Dsh));
    let switches: Vec<_> = (0..n).map(|_| b.switch()).collect();
    let mut switch_links = Vec::new();
    let mut host_uplinks = Vec::new();
    for i in 0..n.saturating_sub(1) {
        let d = delay(seed, i);
        b.link(switches[i], switches[i + 1], BW, d);
        switch_links.push((switches[i], switches[i + 1], d));
    }
    if ring && n > 2 {
        let d = delay(seed, n);
        b.link(switches[n - 1], switches[0], BW, d);
        switch_links.push((switches[n - 1], switches[0], d));
    }
    for &s in &switches {
        let h = b.host();
        b.link(h, s, BW, Delta::from_us(1));
        host_uplinks.push((h, s));
    }
    Topo { net: b.build(), switches, switch_links, host_uplinks }
}

/// A leaf–spine fabric; every switch–switch link shares one delay.
fn leaf_spine_topo(leaves: usize, spines: usize, hosts_per_leaf: usize, seed: u64) -> Topo {
    let d = delay(seed, 0);
    let ls = leaf_spine(
        NetParams::tomahawk(Scheme::Dsh),
        LeafSpineShape { leaves, spines, hosts_per_leaf, downlink: BW, uplink: BW, link_delay: d },
    );
    let mut switches = ls.leaves.clone();
    switches.extend_from_slice(&ls.spines);
    let mut switch_links = Vec::new();
    for &leaf in &ls.leaves {
        for &spine in &ls.spines {
            switch_links.push((leaf, spine, d));
        }
    }
    let mut host_uplinks = Vec::new();
    for (li, rack) in ls.hosts.iter().enumerate() {
        for &h in rack {
            host_uplinks.push((h, ls.leaves[li]));
        }
    }
    Topo { net: ls.builder.build(), switches, switch_links, host_uplinks }
}

/// A k-ary fat-tree; uniform link delay, ground truth from the builder's
/// published layers.
fn fat_tree_topo(k: usize, seed: u64) -> Topo {
    let d = delay(seed, 0);
    let ft = fat_tree(NetParams::tomahawk(Scheme::Dsh), k, BW, d);
    let mut switches = Vec::new();
    switches.extend_from_slice(&ft.cores);
    for pod in 0..k {
        switches.extend_from_slice(&ft.aggs[pod]);
        switches.extend_from_slice(&ft.edges[pod]);
    }
    // The exact link list is the builder's business; all inter-switch
    // delays equal `d`, which is all the lookahead check needs.
    // hosts[pod] is edge-major: the first k/2 hosts hang off edge 0, the
    // next k/2 off edge 1, and so on (see `fat_tree`).
    let mut host_uplinks = Vec::new();
    for pod in 0..k {
        for (i, &h) in ft.hosts[pod].iter().enumerate() {
            host_uplinks.push((h, ft.edges[pod][i / (k / 2)]));
        }
    }
    Topo { net: ft.builder.build(), switches, switch_links: Vec::new(), host_uplinks }
}

/// Checks every partitioner postcondition against the ground truth.
///
/// `uniform_delay` stands in for the link list when the topology has one
/// delay everywhere (fat-tree): any cut link then yields that lookahead.
fn check_plan(topo: &Topo, max_parts: usize, uniform_delay: Option<Delta>) {
    let plan = partition(&topo.net, max_parts).expect("positive-delay topology must partition");
    let owner = plan.owner();
    let parts = plan.parts();
    assert!(parts >= 1);
    assert!(parts <= max_parts.max(1));
    assert!(parts <= topo.switches.len().max(1));

    // Non-empty: every partition id owns at least one switch.
    let mut seen = vec![false; parts];
    for &s in &topo.switches {
        let o = owner[s.0] as usize;
        assert!(o < parts, "switch {s} owned by out-of-range partition {o}");
        seen[o] = true;
    }
    assert!(seen.iter().all(|&x| x), "empty partition in {seen:?}");

    // Host-closed: every host rides with its uplink switch, so only
    // switch–switch links are ever cut.
    for &(h, s) in &topo.host_uplinks {
        assert_eq!(owner[h.0], owner[s.0], "host {h} split from its switch {s}");
    }

    // Lookahead = min propagation delay over the cut.
    let cut_min = if let Some(d) = uniform_delay {
        (parts > 1).then_some(d)
    } else {
        topo.switch_links
            .iter()
            .filter(|(a, b, _)| owner[a.0] != owner[b.0])
            .map(|&(_, _, d)| d)
            .min()
    };
    if let Some(expect) = cut_min {
        assert_eq!(plan.lookahead(), expect, "lookahead must equal the min cut delay");
    }
    if parts == 1 {
        assert!(
            topo.switch_links.iter().all(|(a, b, _)| owner[a.0] == owner[b.0]),
            "single partition cannot cut links"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    // Chains are capped at 8 switches: the builder rejects deeper routes
    // (frames carry HOP_CAPACITY inline telemetry stamps).
    fn chains_partition_cleanly(n in 1usize..9, seed in 0u64..1000, max_parts in 1usize..10) {
        check_plan(&chain_or_ring(n, seed, false), max_parts, None);
    }

    #[test]
    fn rings_partition_cleanly(n in 3usize..12, seed in 0u64..1000, max_parts in 1usize..10) {
        check_plan(&chain_or_ring(n, seed, true), max_parts, None);
    }

    #[test]
    fn leaf_spines_partition_cleanly(
        leaves in 2usize..5,
        spines in 2usize..5,
        hosts in 1usize..4,
        seed in 0u64..1000,
        max_parts in 1usize..10,
    ) {
        check_plan(&leaf_spine_topo(leaves, spines, hosts, seed), max_parts, Some(delay(seed, 0)));
    }

    #[test]
    fn zero_delay_cut_links_are_rejected(n in 2usize..8, max_parts in 2usize..10) {
        // All inter-switch links at zero delay: with at least two blocks
        // some consecutive pair is cut, so the partitioner must refuse.
        let mut b = NetworkBuilder::new(NetParams::tomahawk(Scheme::Dsh));
        let switches: Vec<_> = (0..n).map(|_| b.switch()).collect();
        for w in switches.windows(2) {
            b.link(w[0], w[1], BW, Delta::ZERO);
        }
        for &s in &switches {
            let h = b.host();
            b.link(h, s, BW, Delta::from_us(1));
        }
        let err = partition(&b.build(), max_parts).expect_err("zero-delay cut must be rejected");
        let PartitionError::ZeroDelayCut { a, b } = err;
        prop_assert!(a.0 < n && b.0 < n, "error must name the offending switch pair");
    }
}

/// Fat-trees at the paper's evaluation arities; plain tests (each builds
/// a sizeable fabric, so random repetition buys nothing).
#[test]
fn fat_trees_partition_cleanly() {
    for k in [4, 8] {
        for max_parts in [1, 3, MAX_PARTITIONS] {
            let topo = fat_tree_topo(k, k as u64);
            check_plan(&topo, max_parts, Some(delay(k as u64, 0)));
        }
    }
}

/// The partition layout must be a pure function of the topology — the
/// worker count never feeds into it (that is what keeps partitioned runs
/// bit-identical at any parallelism).
#[test]
fn plan_is_a_pure_function_of_topology() {
    let a = partition(&chain_or_ring(6, 9, false).net, MAX_PARTITIONS).unwrap();
    let b = partition(&chain_or_ring(6, 9, false).net, MAX_PARTITIONS).unwrap();
    assert_eq!(a, b);
}
