//! Runtime fault injection and loss recovery, end to end: link flaps on a
//! loaded fabric must cost only retransmissions — every flow completes (or
//! is explicitly failed), the MMU stays audit-clean, and runs remain
//! bit-identical at any executor width.

mod common;

use common::{add_incast, assert_lossless, raw_params, run, star};
use dsh_core::Scheme;
use dsh_net::topology::{leaf_spine, LeafSpine, LeafSpineShape};
use dsh_net::{FaultPlan, FlowSpec, NetParams, Network};
use dsh_simcore::{Bandwidth, ByteSize, Delta, Executor, Time};
use dsh_transport::CcKind;
use proptest::prelude::*;

/// A 2×2 leaf–spine with `hosts_per_leaf` per rack, 100 Gb/s everywhere.
fn fabric(params: NetParams, hosts_per_leaf: usize) -> LeafSpine {
    leaf_spine(
        params,
        LeafSpineShape {
            leaves: 2,
            spines: 2,
            hosts_per_leaf,
            downlink: Bandwidth::from_gbps(100),
            uplink: Bandwidth::from_gbps(100),
            link_delay: Delta::from_us(2),
        },
    )
}

/// Cross-rack incast: every rack-0 host sends `size` bytes to the first
/// rack-1 host, so all flows transit the spine layer. (`hosts` is cloned
/// out of the [`LeafSpine`] before `build()` consumes its builder.)
fn cross_rack_incast(hosts: &[Vec<dsh_net::NodeId>], net: &mut Network, size: u64, cc: CcKind) {
    for (i, &src) in hosts[0].iter().enumerate() {
        net.add_flow(FlowSpec {
            src,
            dst: hosts[1][0],
            size,
            class: 0,
            start: Time::ZERO + Delta::from_us(i as u64),
            cc,
        });
    }
}

/// The acceptance scenario: a mid-run down/up flap of a leaf–spine uplink
/// under cross-rack load. Every flow must complete via retransmission —
/// none wedged, none failed — with frames demonstrably lost and the MMU
/// audit clean afterwards.
#[test]
fn mid_run_flap_recovers_every_flow() {
    for scheme in [Scheme::Sih, Scheme::Dsh] {
        let ls = fabric(NetParams::tomahawk(scheme), 4);
        let (leaf0, spine0) = (ls.leaves[0], ls.spines[0]);
        let hosts = ls.hosts.clone();
        let mut net = ls.builder.build();
        cross_rack_incast(&hosts, &mut net, 512 * 1024, CcKind::Dcqcn);
        net.set_fault_plan(FaultPlan::new(7).flap(
            leaf0,
            spine0,
            Time::from_us(20),
            Time::from_us(120),
        ));
        let registered = net.flow_count();
        let end = Time::from_ms(4);
        let net = run(net, end);

        assert_eq!(net.fct_records().len(), registered, "{scheme}: a flow wedged or failed");
        assert_eq!(net.failed_flow_count(), 0, "{scheme}: survivable flap failed a flow");
        assert!(net.link_drops() > 0, "{scheme}: the flap lost no frames");
        assert!(net.retransmissions() > 0, "{scheme}: recovery never kicked in");
        assert_lossless(&net, end);
        for (id, audit) in net.audit_all() {
            assert!(audit.is_clean(), "{scheme}: dirty audit at {id}: {:?}", audit.violations);
        }
    }
}

/// Regression (PR 4 satellite): killing a link whose switch port holds an
/// active PFC pause ledger must clear the ledger so the surviving peers
/// unblock. A small-buffer incast guarantees the switch has paused its
/// ingress ports when one sender's access link dies mid-burst; the other
/// senders must still complete, and the dead sender's flow must finish
/// after the repair instead of inheriting a stale pause.
#[test]
fn link_down_clears_active_pause_ledger() {
    let params = raw_params(Scheme::Dsh).with_buffer(ByteSize::kib(600)).with_default_recovery();
    let (mut net, hosts) = star(params, 4);
    add_incast(&mut net, &hosts[..3], hosts[3], 512 * 1024, 0, Time::ZERO, CcKind::Uncontrolled);
    // 3:1 at full rate overflows the shared pool immediately, so ingress
    // ports are paused when the link dies at 20 us.
    let switch = dsh_net::NodeId(hosts.len()); // star() adds the hub last
    net.set_fault_plan(FaultPlan::new(3).flap(
        hosts[0],
        switch,
        Time::from_us(20),
        Time::from_us(200),
    ));
    let registered = net.flow_count();
    let end = Time::from_ms(6);
    let net = run(net, end);

    let report = net.telemetry_report(end);
    let paused_ns: u64 = report.ports.iter().map(|p| p.queue_level.as_ns()).sum();
    assert!(paused_ns > 0, "incast never triggered PFC — the regression is untested");
    assert_eq!(net.fct_records().len(), registered, "a peer stayed blocked on a stale ledger");
    assert_eq!(net.failed_flow_count(), 0);
    assert!(net.link_drops() > 0);
    assert_lossless(&net, end);
    for (id, audit) in net.audit_all() {
        assert!(audit.is_clean(), "leaked pause/headroom at {id}: {:?}", audit.violations);
    }
}

/// Random frame corruption on a spine link: lossy, but go-back-N still
/// delivers every flow.
#[test]
fn corruption_is_recovered_by_go_back_n() {
    let ls = fabric(NetParams::tomahawk(Scheme::Dsh), 2);
    let (leaf0, spine0) = (ls.leaves[0], ls.spines[0]);
    let hosts = ls.hosts.clone();
    let mut net = ls.builder.build();
    cross_rack_incast(&hosts, &mut net, 256 * 1024, CcKind::Dcqcn);
    net.set_fault_plan(FaultPlan::new(11).corrupt_link(leaf0, spine0, 0.02));
    let registered = net.flow_count();
    let end = Time::from_ms(8);
    let net = run(net, end);

    assert_eq!(net.fct_records().len(), registered, "corruption wedged a flow");
    assert!(net.link_drops() > 0, "2% corruption on a loaded link lost nothing");
    assert!(net.retransmissions() > 0);
    assert_lossless(&net, end);
}

/// One randomized fault scenario: flap schedule (non-overlapping, always
/// repaired) on a chosen uplink plus optional corruption.
#[derive(Clone, Copy, Debug)]
struct RandomFaults {
    uplink: usize,
    /// (gap before this flap, outage length) in µs; accumulated in order.
    flaps: [(u64, u64); 3],
    corruption: f64,
    seed: u64,
}

fn fault_strategy() -> impl Strategy<Value = RandomFaults> {
    (0usize..4, proptest::collection::vec((5u64..120, 5u64..70), 3..4), 0.0f64..0.02, 0u64..1000)
        .prop_map(|(uplink, flaps, corruption, seed)| RandomFaults {
            uplink,
            flaps: [flaps[0], flaps[1], flaps[2]],
            corruption,
            seed,
        })
}

/// Builds, loads and runs the property fabric under one random scenario,
/// returning the finished network plus its registered flow count.
fn run_random(scheme: Scheme, f: &RandomFaults) -> (Network, usize) {
    let ls = fabric(NetParams::tomahawk(scheme).with_seed(f.seed), 2);
    let (leaf, spine) = (ls.leaves[f.uplink / 2], ls.spines[f.uplink % 2]);
    let hosts = ls.hosts.clone();
    let mut net = ls.builder.build();
    cross_rack_incast(&hosts, &mut net, 128 * 1024, CcKind::Dcqcn);

    let mut plan = FaultPlan::new(f.seed);
    let mut t = Delta::from_us(10);
    for &(gap, outage) in &f.flaps {
        let down = t + Delta::from_us(gap);
        let up = down + Delta::from_us(outage);
        plan = plan.flap(leaf, spine, Time::ZERO + down, Time::ZERO + up);
        t = up;
    }
    if f.corruption > 0.0 {
        plan = plan.corrupt_link(leaf, spine, f.corruption);
    }
    net.set_fault_plan(plan);
    let registered = net.flow_count();
    (run(net, Time::from_ms(10)), registered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under *any* always-repaired fault plan: no flow wedges (each
    /// completes or is explicitly failed), the MMU audit is clean, no
    /// admission drop ever happens, and the run is byte-identical at 1
    /// and 4 executor threads.
    #[test]
    fn random_fault_plans_never_wedge_or_leak(f in fault_strategy()) {
        for scheme in [Scheme::Sih, Scheme::Dsh] {
            let [serial, four] = [Executor::new(1), Executor::new(4)].map(|ex| {
                ex.par_map(vec![f, f], move |rf| {
                    let (net, registered) = run_random(scheme, &rf);
                    let end = Time::from_ms(10);
                    let done = net.fct_records().len() as u64 + net.failed_flow_count();
                    assert_eq!(done, registered as u64, "wedged flow under {rf:?}");
                    assert_lossless(&net, end);
                    for (id, audit) in net.audit_all() {
                        assert!(
                            audit.is_clean(),
                            "dirty audit at {id} under {rf:?}: {:?}",
                            audit.violations
                        );
                    }
                    net.telemetry_report(end).to_json().to_string()
                })
            });
            prop_assert_eq!(serial, four, "thread count changed a fault run");
        }
    }
}
