#![allow(dead_code)] // helpers are shared; each test file uses a subset
//! Shared helpers for the integration tests.

use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetParams, Network, NetworkBuilder, NodeId};
use dsh_simcore::{Bandwidth, Delta, Time};
use dsh_transport::CcKind;

/// A single switch with `n` hosts attached at 100 Gb/s / 2 µs (the paper's
/// microbenchmark unit).
pub fn star(params: NetParams, n: usize) -> (Network, Vec<NodeId>) {
    let mut b = NetworkBuilder::new(params);
    let hosts: Vec<NodeId> = (0..n).map(|_| b.host()).collect();
    let s = b.switch();
    for &h in &hosts {
        b.link(h, s, Bandwidth::from_gbps(100), Delta::from_us(2));
    }
    (b.build(), hosts)
}

/// Tomahawk params with ECN off (uncontrolled microbenchmarks).
pub fn raw_params(scheme: Scheme) -> NetParams {
    NetParams::tomahawk(scheme).without_ecn()
}

/// Adds an incast: `senders` each ship `size` bytes to `dst` at `start`,
/// all in `class`, uncontrolled.
pub fn add_incast(
    net: &mut Network,
    senders: &[NodeId],
    dst: NodeId,
    size: u64,
    class: u8,
    start: Time,
    cc: CcKind,
) {
    for &src in senders {
        net.add_flow(FlowSpec { src, dst, size, class, start, cc });
    }
}

/// Runs until `deadline` and returns the finished model.
pub fn run(net: Network, deadline: Time) -> Network {
    let mut sim = net.into_sim();
    sim.run_until(deadline);
    sim.into_model()
}

/// Asserts the run was lossless and internally consistent. On failure the
/// message names each offending switch, port, and violated invariant
/// (from [`Network::telemetry_report`]) instead of a bare counter.
///
/// Fault-aware: frames lost to an installed [`FaultPlan`] (`link_drops`)
/// are the injected faults doing their job and are permitted; MMU
/// admission drops (`data_drops`) are hard failures either way, and
/// `link_drops` without a fault plan mean the fault path leaked into a
/// healthy run.
///
/// [`FaultPlan`]: dsh_net::FaultPlan
pub fn assert_lossless(net: &Network, now: Time) {
    let report = net.telemetry_report(now);
    let violations = report.lossless_violations();
    assert!(
        violations.is_empty() && net.data_drops() == 0,
        "losslessness violated ({} data drops):\n{}",
        net.data_drops(),
        violations.join("\n")
    );
    assert!(
        net.fault_plan_active() || net.link_drops() == 0,
        "{} link drops without an installed fault plan",
        net.link_drops()
    );
}

/// The lossy-mode sibling of [`assert_lossless`]: drop-tail admission
/// drops are expected congestion signal (bounded by `max_data_drops`),
/// but the switch must never have paused — a lossy switch sends no PFC —
/// and every MMU audit must still be clean (no headroom or insurance
/// charges, no pause ledger residue).
pub fn assert_bounded_loss(net: &Network, now: Time, max_data_drops: u64) {
    assert!(
        net.data_drops() <= max_data_drops,
        "lossy run exceeded its drop budget: {} > {max_data_drops} drops",
        net.data_drops()
    );
    let paused_ns: u64 =
        net.pause_ledgers(now).map(|l| l.queue_level.as_ns() + l.port_level.as_ns()).sum();
    assert_eq!(paused_ns, 0, "a lossy run paused for {paused_ns} ns — PFC leaked into no-PFC mode");
    for (id, audit) in net.audit_all() {
        assert!(audit.is_clean(), "dirty audit at {id} in a lossy run: {:?}", audit.violations);
    }
    assert!(
        net.fault_plan_active() || net.link_drops() == 0,
        "{} link drops without an installed fault plan",
        net.link_drops()
    );
}
