//! Pause-causality observatory: metrics-export determinism and the
//! victim-attribution acceptance scenario (DESIGN.md §16).
//!
//! The sampler's contract mirrors the telemetry contract next door in
//! `determinism.rs`: `metrics.json` is a pure function of the experiment
//! config.  The executor thread count may never move a byte, and on
//! scenarios inside the engines' documented equivalence class (ECN off,
//! distinct calendar instants, no same-instant cross-partition arrival
//! pairs at one node) the link-partitioned engine at any worker count
//! must reproduce the serial calendar's export byte for byte.  Samples
//! are *instant-closed* (captured at the first event strictly after the
//! sample instant), which is what makes the latter possible at all: the
//! event set at instants `<= t` is engine-invariant even though the
//! intra-instant order is not.

use dsh_core::Scheme;
use dsh_net::{FlowSpec, NetParams, NetworkBuilder, ObserveConfig, ParallelSim};
use dsh_simcore::{Bandwidth, ByteSize, Delta, Executor, Json, Time};
use dsh_transport::CcKind;
use proptest::prelude::*;

/// FNV-1a over the rendered output, so a golden is one `u64` literal.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The 4-switch chain of `determinism.rs`, with the observatory armed:
/// two hosts per switch, ECN off, staggered uncontrolled senders crossing
/// every inter-switch link — the documented requirements for
/// serial/partitioned bit-identity.
fn chain_net(scheme: Scheme) -> dsh_net::Network {
    let params =
        NetParams::tomahawk(scheme).without_ecn().with_observability(ObserveConfig::default());
    let mut b = NetworkBuilder::new(params);
    let switches: Vec<_> = (0..4).map(|_| b.switch()).collect();
    let hosts: Vec<_> = (0..8).map(|_| b.host()).collect();
    let bw = Bandwidth::from_gbps(100);
    for (i, &h) in hosts.iter().enumerate() {
        b.link(h, switches[i / 2], bw, Delta::from_us(1));
    }
    for w in switches.windows(2) {
        b.link(w[0], w[1], bw, Delta::from_us(2));
    }
    let mut net = b.build();
    for i in 0..4 {
        for (j, (src, dst)) in
            [(hosts[i], hosts[7 - i]), (hosts[7 - i], hosts[i])].into_iter().enumerate()
        {
            net.add_flow(FlowSpec {
                src,
                dst,
                size: 150_000 + 30_000 * i as u64,
                class: 0,
                start: Time::from_us((2 * i + j) as u64 * 3),
                cc: CcKind::Uncontrolled,
            });
        }
    }
    net
}

/// Serial-calendar metrics export for the chain scenario.
fn chain_serial_metrics(scheme: Scheme) -> String {
    let mut sim = chain_net(scheme).into_sim();
    sim.run_until(Time::from_ms(1));
    sim.into_model().metrics_json().expect("observatory armed").to_string()
}

/// Link-partitioned metrics export for the same scenario.
fn chain_partitioned_metrics(scheme: Scheme, workers: usize) -> String {
    let mut par = ParallelSim::new(chain_net(scheme), workers).expect("chain must partition");
    par.run_until(Time::from_ms(1));
    par.into_network().metrics_json().expect("observatory armed").to_string()
}

/// Golden digests (SIH, DSH, BShare) of the chain scenario's
/// `metrics.json`, pinned when instant-closed sampling landed.  Shared by
/// the thread- and worker-sweep tests below: one number covers every
/// engine and every parallelism degree.
const CHAIN_METRICS_GOLDENS: [u64; 3] =
    [1_703_595_893_821_035_905, 11_353_493_432_171_286_276, 5_148_546_422_598_002_649];

#[test]
fn metrics_json_is_byte_identical_at_1_and_4_threads() {
    let schemes = vec![Scheme::Sih, Scheme::Dsh, Scheme::BShare];
    let run =
        |threads: usize| Executor::new(threads).par_map(schemes.clone(), chain_serial_metrics);
    let serial = run(1);
    let four = run(4);
    assert_eq!(serial, four);
    let digests: Vec<u64> = serial.iter().map(|s| fnv1a(s)).collect();
    assert_eq!(digests, CHAIN_METRICS_GOLDENS, "metrics JSON drifted across thread counts");
}

#[test]
fn metrics_json_is_byte_identical_at_1_2_4_workers_and_serial() {
    for (scheme, golden) in
        [Scheme::Sih, Scheme::Dsh, Scheme::BShare].into_iter().zip(CHAIN_METRICS_GOLDENS)
    {
        let serial = chain_serial_metrics(scheme);
        for workers in [1, 2, 4] {
            assert_eq!(
                serial,
                chain_partitioned_metrics(scheme, workers),
                "{scheme:?} metrics drifted at {workers} workers"
            );
        }
        assert_eq!(fnv1a(&serial), golden, "{scheme:?} metrics JSON drifted");
    }
}

/// The fig. 18 acceptance scenario: a seeded 8-to-1 two-switch incast
/// must record a cascade of depth >= 2 (the root switch's pause reaches
/// the sender NICs) with nonzero victim-flow pause attribution.
#[test]
fn incast_cascade_attributes_victim_pause_time() {
    let r = dsh_bench::fig18::run_cell(&dsh_bench::fig18::smoke_base(Scheme::Dsh));
    assert!(r.cascades.count >= 1, "no cascade recorded");
    assert!(r.cascades.max_depth >= 2, "cascade never left the root switch");
    assert!(r.cascades.host_nic_edges >= 1, "cascade never reached a sender NIC");
    assert!(r.victim_ns > 0, "no victim pause time attributed");
    assert!(r.cascades.cycles.is_empty(), "cycle finding on an acyclic topology");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random single-switch incasts with the observatory armed.  The
    /// export must re-parse, sample instants must advance strictly
    /// monotonically at the configured interval, and no switch sample may
    /// ever report more occupancy than the switch owns.  Debug builds
    /// additionally cross-check every capture against `Mmu::audit()`
    /// inside the sampler itself (a `debug_assert`, live in this test
    /// profile), so each case also proves sampler/audit agreement at
    /// every sample instant.
    #[test]
    fn sampler_agrees_with_audit_on_random_incasts(
        scheme_pick in 0u8..3,
        degree in 2usize..7,
        size in 20_000u64..200_000,
        stagger_ns in 1u64..900,
        seed in 0u64..1000,
        interval_us in 2u64..40,
    ) {
        let scheme = match scheme_pick {
            0 => Scheme::Sih,
            1 => Scheme::Dsh,
            _ => Scheme::BShare,
        };
        let buffer = ByteSize::mib(2);
        let cfg = ObserveConfig::default().with_interval(Delta::from_us(interval_us));
        let params = NetParams::tomahawk(scheme)
            .with_buffer(buffer)
            .with_seed(seed)
            .without_ecn()
            .with_observability(cfg);
        let mut b = NetworkBuilder::new(params);
        let hosts: Vec<_> = (0..=degree).map(|_| b.host()).collect();
        let sw = b.switch();
        for &h in &hosts {
            b.link(h, sw, Bandwidth::from_gbps(100), Delta::from_us(1));
        }
        let mut net = b.build();
        for (i, &src) in hosts[..degree].iter().enumerate() {
            net.add_flow(FlowSpec {
                src,
                dst: hosts[degree],
                size,
                class: 0,
                start: Time::from_ns(i as u64 * stagger_ns),
                cc: CcKind::Uncontrolled,
            });
        }
        let mut sim = net.into_sim();
        sim.run_until(Time::from_us(400));
        let net = sim.into_model();

        let doc = net.metrics_json().expect("observatory armed");
        let round = Json::parse(&doc.to_string()).expect("export must re-parse");
        prop_assert_eq!(round.get("version").and_then(Json::as_u64), Some(1));
        prop_assert_eq!(
            round.get("interval_ns").and_then(Json::as_u64),
            Some(interval_us * 1_000)
        );
        let samples = round.get("samples").and_then(Json::as_u64).unwrap_or(0);
        prop_assert!(samples > 0, "400us horizon at {interval_us}us recorded nothing");
        let switches = round.get("switches").and_then(Json::as_arr).expect("switch series");
        prop_assert_eq!(switches.len(), 1);
        for sw in switches {
            let col = |k: &str| -> Vec<u64> {
                sw.get(k)
                    .and_then(Json::as_arr)
                    .expect("column")
                    .iter()
                    .map(|v| v.as_u64().expect("u64 column"))
                    .collect()
            };
            let t = col("t_ns");
            prop_assert!(t.windows(2).all(|w| w[1] == w[0] + interval_us * 1_000));
            let shared = col("shared_bytes");
            let headroom = col("headroom_bytes");
            prop_assert_eq!(t.len(), shared.len());
            for (s, h) in shared.iter().zip(&headroom) {
                prop_assert!(
                    s + h <= buffer.as_u64(),
                    "sampled occupancy {} + {} exceeds the {}-byte buffer",
                    s, h, buffer.as_u64()
                );
            }
        }
    }
}
