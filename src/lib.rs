//! # dsh — Dynamic and Shared Headroom allocation for PFC networks
//!
//! Facade crate for the reproduction of *"Less is More: Dynamic and
//! Shared Headroom Allocation in PFC-Enabled Datacenter Networks"*
//! (ICDCS 2023). Re-exports the workspace crates under one roof:
//!
//! * [`core`] — the paper's contribution: the switch MMU with Dynamic
//!   Threshold, PFC state machines, the SIH baseline and DSH;
//! * [`simcore`] — deterministic discrete-event engine;
//! * [`net`] — packet-level dataplane, topologies, routing, measurement;
//! * [`transport`] — DCQCN, PowerTCP, uncontrolled senders;
//! * [`workloads`] — datacenter flow-size distributions and patterns;
//! * [`analysis`] — burst-absorption theory (Theorems 1–2) and statistics.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! modelling decisions.
//!
//! # Example
//!
//! ```
//! use dsh::core::Scheme;
//! use dsh::net::{FlowSpec, NetParams, NetworkBuilder};
//! use dsh::simcore::{Bandwidth, Delta, Time};
//! use dsh::transport::CcKind;
//!
//! let mut b = NetworkBuilder::new(NetParams::tomahawk(Scheme::Dsh));
//! let (h0, h1, s) = (b.host(), b.host(), b.switch());
//! b.link(h0, s, Bandwidth::from_gbps(100), Delta::from_us(2));
//! b.link(h1, s, Bandwidth::from_gbps(100), Delta::from_us(2));
//! let mut net = b.build();
//! net.add_flow(FlowSpec {
//!     src: h0,
//!     dst: h1,
//!     size: 150_000,
//!     class: 0,
//!     start: Time::ZERO,
//!     cc: CcKind::Dcqcn,
//! });
//! let mut sim = net.into_sim();
//! sim.run_until(Time::from_ms(5));
//! let net = sim.into_model();
//! assert_eq!(net.fct_records().len(), 1);
//! assert_eq!(net.data_drops(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dsh_analysis as analysis;
pub use dsh_core as core;
pub use dsh_net as net;
pub use dsh_simcore as simcore;
pub use dsh_transport as transport;
pub use dsh_workloads as workloads;
